"""ALP: adaptive lossless floating-point compression (Afroozeh et al. 2023).

ALP encodes a double ``x`` as an integer of significant digits via the
*pseudodecimal* transform ``d = round(x * 10^e / 10^f)``; decoding computes
``d * 10^f / 10^e`` and must reproduce ``x`` bit-exactly, otherwise the value
becomes an *exception* stored raw.  Per block of 1024 values ALP picks the
``(e, f)`` exponent pair minimising the encoded size (sampling a few values
first, then verifying the whole block), and bit-packs the integers with a
frame-of-reference code.

Our datasets are decimal-scaled integers, so the adapter reconstructs the
doubles as ``v / 10^digits`` (the exact inverse of the dataset scaling),
compresses those, and converts back on decoding — bit-exactness of ALP makes
the int64 round-trip exact as well.
"""

from __future__ import annotations

import numpy as np

from ..bits.packed import PackedArray, min_width
from ._native import (
    ALP_BLOCK as _ALP_BLOCK,
    ALP_HDR as _ALP_HDR,
    INT64,
    INT64_PAIR,
    pack_packed_array,
    unpack_packed_array,
)
from .base import Compressed, LosslessCompressor

__all__ = ["AlpCompressor"]

_BLOCK = 1024
_MAX_E = 14
_POW10 = np.power(10.0, np.arange(_MAX_E + 1))
_SAMPLE = 32


def _try_pair(xs: np.ndarray, e: int, f: int) -> np.ndarray | None:
    """Encoded integers for (e, f), or None if any value overflows int64."""
    scaled = xs * _POW10[e] / _POW10[f]
    if not np.all(np.isfinite(scaled)):
        return None
    if np.any(np.abs(scaled) > 2**62):
        return None
    return np.round(scaled).astype(np.int64)


def _roundtrip_ok(xs: np.ndarray, d: np.ndarray, e: int, f: int) -> np.ndarray:
    """Boolean mask of values decoded bit-exactly."""
    back = d.astype(np.float64) * _POW10[f] / _POW10[e]
    return back == xs


def _choose_pair(xs: np.ndarray) -> tuple[int, int]:
    """Pick (e, f) on a sample by maximising exact hits, then compactness."""
    sample = xs[:: max(len(xs) // _SAMPLE, 1)]
    best = (0, 0)
    best_key = (-1, float("inf"))
    for e in range(_MAX_E + 1):
        for f in range(min(e, 3) + 1):
            d = _try_pair(sample, e, f)
            if d is None:
                continue
            ok = _roundtrip_ok(sample, d, e, f)
            hits = int(ok.sum())
            spread = float(d[ok].max() - d[ok].min()) if hits else float("inf")
            key = (hits, -spread)
            if key > (best_key[0], -best_key[1]):
                best_key = (hits, spread)
                best = (e, f)
    return best


class _AlpBlock:
    __slots__ = ("e", "f", "base", "packed", "exc_pos", "exc_raw", "count")

    def __init__(self, e, f, base, packed, exc_pos, exc_raw, count):
        self.e = e
        self.f = f
        self.base = base
        self.packed = packed
        self.exc_pos = exc_pos
        self.exc_raw = exc_raw
        self.count = count

    def decode(self) -> np.ndarray:
        d = self.packed.to_numpy().astype(np.int64) + self.base
        xs = d.astype(np.float64) * _POW10[self.f] / _POW10[self.e]
        if len(self.exc_pos):
            xs[self.exc_pos] = self.exc_raw
        return xs

    def size_bits(self) -> int:
        return (
            8 + 8 + 64  # e, f, base
            + self.packed.size_bits()
            + len(self.exc_pos) * (16 + 64)
            + 16
        )


class _AlpCompressed(Compressed):
    payload_is_native = True

    def __init__(
        self,
        blocks: list[_AlpBlock],
        n: int,
        scale: float,
        patches: dict[int, int] | None = None,
    ) -> None:
        self._blocks = blocks
        self._n = n
        self._scale = scale
        # Integer-level patches: positions where the int64 -> double -> int64
        # round-trip is lossy (|value| beyond 2^53); stored raw.
        self._patches = patches or {}

    def size_bits(self) -> int:
        return (
            64 * 2
            + sum(b.size_bits() for b in self._blocks)
            + len(self._patches) * (64 + 64)
        )

    def _to_int(self, xs: np.ndarray, base: int) -> np.ndarray:
        out = np.round(xs * self._scale).astype(np.int64)
        for pos, value in self._patches.items():
            if base <= pos < base + len(out):
                out[pos - base] = value
        return out

    def decompress(self) -> np.ndarray:
        xs = np.concatenate([b.decode() for b in self._blocks])
        return self._to_int(xs, 0)

    def access(self, k: int) -> int:
        # The paper's §IV-A2 protocol: ALP has no native random access, so an
        # access decodes the whole covering 1024-value block, then indexes.
        if not 0 <= k < self._n:
            raise IndexError(k)
        if k in self._patches:
            return self._patches[k]
        idx, off = divmod(k, _BLOCK)
        xs = self._blocks[idx].decode()
        return int(round(float(xs[off]) * self._scale))

    def decompress_range(self, lo: int, hi: int) -> np.ndarray:
        if not 0 <= lo <= hi <= self._n:
            raise IndexError((lo, hi))
        if lo == hi:
            return np.empty(0, dtype=np.int64)
        first = lo // _BLOCK
        last = (hi - 1) // _BLOCK
        xs = np.concatenate([self._blocks[i].decode() for i in range(first, last + 1)])
        base = first * _BLOCK
        return self._to_int(xs, base)[lo - base : hi - base]

    def to_payload(self) -> bytes:
        """Native frame payload: per-block (e, f) codes, packed digits, and
        exceptions, plus the integer-level patches."""
        parts = [_ALP_HDR.pack(self._n, self._scale, len(self._patches))]
        for pos_, value in sorted(self._patches.items()):
            parts.append(INT64_PAIR.pack(pos_, value))
        parts.append(INT64.pack(len(self._blocks)))
        for b in self._blocks:
            parts.append(
                _ALP_BLOCK.pack(b.e, b.f, b.base, b.count, len(b.exc_pos))
            )
            parts.append(pack_packed_array(b.packed))
            parts.append(np.asarray(b.exc_pos, dtype=np.int64).tobytes())
            parts.append(np.asarray(b.exc_raw, dtype=np.float64).tobytes())
        return b"".join(parts)

    @classmethod
    def from_payload(cls, payload) -> "_AlpCompressed":
        """Rebuild from :meth:`to_payload` output — a direct parse, no
        recompression (works over any byte buffer, e.g. an mmapped frame)."""
        view = memoryview(payload) if not isinstance(payload, memoryview) else payload
        if len(view) < _ALP_HDR.size:
            raise ValueError("corrupt ALP payload: header incomplete")
        n, scale, npatches = _ALP_HDR.unpack_from(view)
        if n < 0 or npatches < 0 or not scale > 0:
            raise ValueError("corrupt ALP payload: bad header")
        pos = _ALP_HDR.size
        if pos + 16 * npatches + 8 > len(view):
            raise ValueError("corrupt ALP payload: truncated patch table")
        patches = {}
        for _ in range(npatches):
            k, value = INT64_PAIR.unpack_from(view, pos)
            pos += 16
            patches[k] = value
        (nblocks,) = INT64.unpack_from(view, pos)
        pos += 8
        if nblocks < 1:
            raise ValueError(f"corrupt ALP payload: {nblocks} blocks")
        blocks: list[_AlpBlock] = []
        for _ in range(nblocks):
            if pos + _ALP_BLOCK.size > len(view):
                raise ValueError("corrupt ALP payload: truncated block header")
            e, f, base, count, n_exc = _ALP_BLOCK.unpack_from(view, pos)
            pos += _ALP_BLOCK.size
            if not 0 <= e <= _MAX_E or not 0 <= f <= _MAX_E:
                raise ValueError(f"corrupt ALP payload: exponent pair ({e}, {f})")
            if n_exc < 0 or count < 1:
                raise ValueError("corrupt ALP payload: bad block counts")
            packed, pos = unpack_packed_array(view, pos, "ALP payload")
            if len(packed) != count:
                raise ValueError(
                    f"corrupt ALP payload: block packs {len(packed)} digits, "
                    f"header says {count}"
                )
            if pos + 16 * n_exc > len(view):
                raise ValueError("corrupt ALP payload: truncated exceptions")
            exc_pos = np.frombuffer(view, dtype=np.int64, count=n_exc, offset=pos)
            pos += 8 * n_exc
            exc_raw = np.frombuffer(view, dtype=np.float64, count=n_exc, offset=pos)
            pos += 8 * n_exc
            blocks.append(_AlpBlock(e, f, base, packed, exc_pos, exc_raw, count))
        if pos != len(view):
            raise ValueError("corrupt ALP payload: trailing bytes")
        return cls(blocks, n, scale, patches)


class AlpCompressor(LosslessCompressor):
    """ALP over the doubles underlying a decimal-scaled integer series.

    Parameters
    ----------
    digits:
        The number of fractional decimal digits of the dataset (the same
        factor used to turn the raw values into integers).
    """

    name = "ALP"
    native_random_access = False  # per-1024 block decode, like the original

    def __init__(self, digits: int = 0) -> None:
        if digits < 0:
            raise ValueError("digits must be non-negative")
        self.digits = digits

    def compress(self, values: np.ndarray) -> _AlpCompressed:
        values = self._check_input(values)
        scale = 10.0**self.digits
        xs_all = values.astype(np.float64) / scale
        blocks: list[_AlpBlock] = []
        for start in range(0, len(values), _BLOCK):
            xs = xs_all[start : start + _BLOCK]
            e, f = _choose_pair(xs)
            d = _try_pair(xs, e, f)
            if d is None:
                d = np.zeros(len(xs), dtype=np.int64)
                ok = np.zeros(len(xs), dtype=bool)
            else:
                ok = _roundtrip_ok(xs, d, e, f)
            exc_pos = np.nonzero(~ok)[0].astype(np.int64)
            exc_raw = xs[~ok].copy()
            d = d.copy()
            if len(exc_pos) == len(xs):
                base = 0
                packed = PackedArray([0] * len(xs), width=0)
            else:
                d[~ok] = d[ok][0] if ok.any() else 0  # placeholder digits
                base = int(d.min())
                width = min_width(int(d.max()) - base)
                packed = PackedArray((d - base).tolist(), width=width)
            blocks.append(
                _AlpBlock(e, f, base, packed, exc_pos, exc_raw, len(xs))
            )
        compressed = _AlpCompressed(blocks, len(values), scale)
        # Guard the int64 adapter: values beyond double precision (2^53) can
        # fail the int -> double -> int round-trip; patch them explicitly.
        decoded = compressed.decompress()
        bad = np.nonzero(decoded != values)[0]
        if len(bad):
            compressed._patches = {int(k): int(values[k]) for k in bad}
        return compressed
