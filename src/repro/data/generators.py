"""Synthetic stand-ins for the paper's 16 real-world datasets (§IV-A1).

The originals (NEON sensor feeds, INFORE stock ticks, a 12-lead ECG corpus,
Geolife GPS traces, Meteoblue history, InfluxDB samples) are not available
offline and span up to 477M points, far beyond pure-Python scale.  Each
generator below reproduces the *statistical character* that drives
compressor behaviour on its namesake:

* trend shape (smooth cycles, random walks, bursts, plateaus),
* noise level and spikes,
* the number of fractional decimal digits (which fixes the int64 scaling and
  dominates the low-bit entropy — e.g. Basel-temp's 9 digits are why every
  compressor does poorly on BT in Table III).

All generators are deterministic (seeded per dataset) and return values
already scaled to int64, exactly like the paper's preprocessing ("multiply by
``10^x`` where ``x`` is the number of fractional digits").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["DatasetInfo", "DATASETS", "load", "dataset_names"]


@dataclass(frozen=True)
class DatasetInfo:
    """Metadata for one synthetic dataset."""

    name: str  # the paper's two-letter code
    full_name: str
    digits: int  # fractional decimal digits of the original data
    default_n: int  # default length at reproduction scale
    description: str
    generator: Callable[[np.random.Generator, int], np.ndarray]

    def generate(self, n: int | None = None, seed: int | None = None) -> np.ndarray:
        """Generate ``n`` int64 values (uses per-dataset defaults)."""
        n = n or self.default_n
        rng = np.random.default_rng(seed if seed is not None else _seed(self.name))
        raw = self.generator(rng, n)
        return np.round(raw * 10.0**self.digits).astype(np.int64)


def _seed(name: str) -> int:
    return int.from_bytes(name.encode(), "little") % (2**32)


# ---------------------------------------------------------------------------
# building blocks
# ---------------------------------------------------------------------------


def _ar1(rng: np.random.Generator, n: int, rho: float, sigma: float) -> np.ndarray:
    """An AR(1) process — the workhorse of slowly varying sensor noise."""
    noise = rng.normal(0.0, sigma, n)
    out = np.empty(n)
    acc = 0.0
    for i in range(n):
        acc = rho * acc + noise[i]
        out[i] = acc
    return out


def _daily_cycle(n: int, period: float, amplitude: float, phase: float = 0.0):
    t = np.arange(n)
    return amplitude * np.sin(2 * np.pi * t / period + phase)


def _random_walk(rng, n, sigma, drift=0.0):
    return np.cumsum(rng.normal(drift, sigma, n))


def _geometric_walk(rng, n, start, vol, drift=0.0):
    log_p = np.log(start) + np.cumsum(rng.normal(drift, vol, n))
    return np.exp(log_p)


def _nonlinear_regimes(
    rng: np.random.Generator,
    n: int,
    level: float,
    swing: float,
    seg_lo: int = 150,
    seg_hi: int = 900,
    noise: float = 0.0,
) -> np.ndarray:
    """Piecewise *nonlinear* dynamics — the regularity NeaTS exploits.

    Real sensor series alternate regimes whose trends follow physical laws:
    exponential relaxation toward an equilibrium (Newton cooling, RC
    charging), quadratic arcs (ballistics, acceleration ramps), square-root
    ramps (diffusion fronts), and plain linear drifts.  Each segment draws a
    regime at random and evolves continuously from the previous endpoint.
    """
    out = np.empty(n)
    value = level
    pos = 0
    while pos < n:
        seg = min(int(rng.integers(seg_lo, seg_hi)), n - pos)
        t = np.arange(seg, dtype=np.float64)
        kind = rng.choice(("exp", "quad", "sqrt", "linear"))
        target = level + rng.normal(0.0, swing)
        if kind == "exp":
            tau = rng.uniform(seg / 6, seg / 2)
            curve = target + (value - target) * np.exp(-t / tau)
        elif kind == "quad":
            a = (target - value) / max(seg - 1, 1) ** 2
            curve = value + a * t * t
        elif kind == "sqrt":
            b = (target - value) / np.sqrt(max(seg - 1, 1))
            curve = value + b * np.sqrt(t)
        else:
            slope = (target - value) / max(seg - 1, 1)
            curve = value + slope * t
        out[pos : pos + seg] = curve
        value = curve[-1]
        pos += seg
    if noise:
        out = out + rng.normal(0.0, noise, n)
    return out


# ---------------------------------------------------------------------------
# the sixteen datasets
# ---------------------------------------------------------------------------


def _ir_bio_temp(rng, n):
    """IT: infrared biological temperature — thermal relaxation regimes.

    Surface temperatures follow Newton-cooling exponentials toward a diurnal
    equilibrium: piecewise nonlinear dynamics plus small sensor noise.
    """
    base = _nonlinear_regimes(rng, n, 18.0, 6.0, 200, 1200, noise=0.03)
    return base + _daily_cycle(n, 1440, 2.0)


def _stocks(rng, n, start, swing, noise):
    """Log-price momentum regimes: exponential trends in price space.

    Prices trend in phases (momentum / mean reversion); a piecewise-smooth
    log-price makes the price itself piecewise exponential — exactly the
    nonlinearity NeaTS's exponential kind captures and PLA must chop up.
    """
    log_p = _nonlinear_regimes(
        rng, n, np.log(start), swing, 150, 1000, noise=noise
    )
    return np.exp(log_p)


def _stocks_usa(rng, n):
    """US: US stock prices — momentum regimes, cents precision."""
    return _stocks(rng, n, 150.0, 0.04, 0.0006)


def _stocks_uk(rng, n):
    """UK: UK stock prices — higher volatility momentum regimes."""
    return _stocks(rng, n, 80.0, 0.05, 0.0007)


def _stocks_de(rng, n):
    """GE: German stock prices — momentum regimes, 3-digit precision."""
    return _stocks(rng, n, 60.0, 0.045, 0.0008)


def _ecg(rng, n):
    """ECG: a synthetic PQRST waveform with beat-to-beat variability."""
    out = np.zeros(n)
    pos = 0
    while pos < n:
        beat_len = int(rng.normal(180, 10))
        beat_len = max(beat_len, 120)
        t = np.linspace(0, 1, beat_len)
        # P wave, QRS complex, T wave as localised Gaussians.
        beat = (
            0.12 * np.exp(-(((t - 0.18) / 0.025) ** 2))
            - 0.18 * np.exp(-(((t - 0.37) / 0.010) ** 2))
            + 1.10 * np.exp(-(((t - 0.40) / 0.008) ** 2))
            - 0.25 * np.exp(-(((t - 0.43) / 0.012) ** 2))
            + 0.28 * np.exp(-(((t - 0.62) / 0.040) ** 2))
        )
        amp = rng.normal(1.0, 0.05)
        end = min(pos + beat_len, n)
        out[pos:end] = amp * beat[: end - pos]
        pos = end
    wander = _ar1(rng, n, 0.999, 0.002)
    return out + wander + rng.normal(0, 0.004, n)


def _wind_direction(rng, n):
    """WD: wind direction in degrees — veering/backing regimes on [0, 360)."""
    swings = _nonlinear_regimes(rng, n, 0.0, 60.0, 100, 600, noise=1.5)
    return np.mod(180.0 + swings, 360.0)


def _air_pressure(rng, n):
    """AP: barometric pressure — smooth nonlinear weather fronts, 5 digits."""
    base = _nonlinear_regimes(rng, n, 1013.25, 6.0, 400, 2000, noise=0.005)
    return base + _daily_cycle(n, 2880, 1.5)


def _geolife_lat(rng, n):
    """LAT: GPS latitude — piecewise movement with stationary plateaus."""
    return _trajectory(rng, n, 39.90, 0.00008)


def _geolife_lon(rng, n):
    """LON: GPS longitude — same trajectory structure around Beijing."""
    return _trajectory(rng, n, 116.40, 0.00010)


def _trajectory(rng, n, start, step):
    out = np.empty(n)
    pos = 0
    value = start
    while pos < n:
        seg = int(rng.integers(50, 400))
        seg = min(seg, n - pos)
        if rng.random() < 0.35:  # stationary (user stopped)
            out[pos : pos + seg] = value + rng.normal(0, step / 10, seg)
        else:  # moving with roughly constant velocity
            v = rng.normal(0, step)
            out[pos : pos + seg] = value + v * np.arange(seg)
            value += v * (seg - 1)
        pos += seg
    return out


def _dewpoint(rng, n):
    """DP: dew point temperature — weather-front relaxation dynamics."""
    base = _nonlinear_regimes(rng, n, 8.0, 4.0, 150, 900, noise=0.02)
    return base + _daily_cycle(n, 1440, 1.0)


def _city_temp(rng, n):
    """CT: city temperatures — seasonal cycles concatenated across cities."""
    out = np.empty(n)
    pos = 0
    while pos < n:
        seg = min(int(rng.integers(300, 800)), n - pos)
        mean = rng.uniform(-5, 30)
        t = np.arange(seg)
        out[pos : pos + seg] = (
            mean
            + 10 * np.sin(2 * np.pi * t / 365 + rng.uniform(0, 6.28))
            + rng.normal(0, 0.8, seg)
        )
        pos += seg
    return out


def _pm10(rng, n):
    """DU: PM10 dust — bursts followed by exponential washout decay."""
    out = np.full(n, 12.0)
    level = 12.0
    for i in range(1, n):
        if rng.random() < 0.004:
            level += float(rng.lognormal(3.2, 0.8))
        level = 12.0 + (level - 12.0) * 0.985  # exponential deposition
        out[i] = level
    return out + rng.normal(0, 0.05, n)


def _basel_temp(rng, n):
    """BT: Basel temperature with 9 (!) fractional digits — noisy low bits."""
    base = 11.0 + _daily_cycle(n, 24, 6.0) + _daily_cycle(n, 24 * 365, 9.0)
    return base + _ar1(rng, n, 0.9, 0.3) + rng.normal(0, 1e-4, n)


def _basel_wind(rng, n):
    """BW: Basel wind speed, 7 digits — gusty, heavy low-bit entropy."""
    speed = np.abs(_ar1(rng, n, 0.97, 0.8)) + 2.0
    return speed + rng.normal(0, 1e-3, n)


def _bird_migration(rng, n):
    """BM: bird positions — nonlinear soaring arcs over a long-range drift."""
    t = np.arange(n)
    arcs = _nonlinear_regimes(rng, n, 45.0, 0.3, 80, 400, noise=0.0005)
    return arcs + 0.0008 * t


def _bitcoin(rng, n):
    """BP: Bitcoin price — bubbly momentum regimes with jumps."""
    log_p = _nonlinear_regimes(rng, n, np.log(9000.0), 0.25, 80, 500,
                               noise=0.004)
    jumps = np.cumsum((rng.random(n) < 0.004) * rng.normal(0, 0.05, n))
    return np.exp(log_p + jumps)


DATASETS: dict[str, DatasetInfo] = {
    info.name: info
    for info in [
        DatasetInfo("IT", "IR-bio-temp", 2, 40_000,
                    "infrared biological temperature (NEON)", _ir_bio_temp),
        DatasetInfo("US", "Stocks-USA", 2, 40_000,
                    "US stock exchange prices (INFORE)", _stocks_usa),
        DatasetInfo("ECG", "Electrocardiogram", 3, 40_000,
                    "12-lead arrhythmia ECG signals", _ecg),
        DatasetInfo("WD", "Wind-direction", 2, 40_000,
                    "2D wind direction (NEON)", _wind_direction),
        DatasetInfo("AP", "Air-pressure", 5, 30_000,
                    "barometric pressure (NEON)", _air_pressure),
        DatasetInfo("UK", "Stocks-UK", 1, 30_000,
                    "UK stock exchange prices (INFORE)", _stocks_uk),
        DatasetInfo("GE", "Stocks-DE", 3, 30_000,
                    "German stock exchange prices (INFORE)", _stocks_de),
        DatasetInfo("LAT", "Geolife-latitude", 4, 25_000,
                    "GPS latitudes of user trajectories (Geolife)", _geolife_lat),
        DatasetInfo("LON", "Geolife-longitude", 4, 25_000,
                    "GPS longitudes of user trajectories (Geolife)", _geolife_lon),
        DatasetInfo("DP", "Dewpoint-temp", 3, 20_000,
                    "relative dew point temperature (NEON)", _dewpoint),
        DatasetInfo("CT", "City-temp", 1, 20_000,
                    "daily temperatures of world cities", _city_temp),
        DatasetInfo("DU", "PM10-dust", 3, 15_000,
                    "PM10 particulate measurements (NEON)", _pm10),
        DatasetInfo("BT", "Basel-temp", 9, 10_000,
                    "Basel temperature, 9 fractional digits (Meteoblue)", _basel_temp),
        DatasetInfo("BW", "Basel-wind", 7, 10_000,
                    "Basel wind speed, 7 fractional digits (Meteoblue)", _basel_wind),
        DatasetInfo("BM", "Bird-migration", 5, 10_000,
                    "bird migration positions (InfluxDB sample)", _bird_migration),
        DatasetInfo("BP", "Bitcoin-price", 4, 7_000,
                    "Bitcoin/USD exchange rate (InfluxDB sample)", _bitcoin),
    ]
}


def dataset_names() -> list[str]:
    """The paper's dataset codes, largest first (Table III order)."""
    return list(DATASETS)


def load(name: str, n: int | None = None, seed: int | None = None) -> np.ndarray:
    """Generate the named dataset at reproduction scale.

    Parameters
    ----------
    name:
        One of the paper's dataset codes (see :func:`dataset_names`).
    n:
        Override the default length.
    seed:
        Override the deterministic per-dataset seed.
    """
    try:
        info = DATASETS[name]
    except KeyError:
        raise ValueError(
            f"unknown dataset {name!r}; known: {', '.join(DATASETS)}"
        ) from None
    return info.generate(n, seed)
