"""Dataset generators and I/O for the 16 evaluation time series."""

from .generators import DATASETS, DatasetInfo, dataset_names, load
from .io_utils import (
    read_binary,
    read_csv,
    scale_to_int,
    unscale_to_float,
    write_binary,
    write_csv,
)

__all__ = [
    "DATASETS",
    "DatasetInfo",
    "dataset_names",
    "load",
    "scale_to_int",
    "unscale_to_float",
    "write_csv",
    "read_csv",
    "write_binary",
    "read_binary",
]
