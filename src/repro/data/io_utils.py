"""CSV and binary round-trip helpers for time series datasets.

The paper's datasets ship as textual fixed-precision values; these utilities
reproduce that interchange format (one decimal value per line) together with
the scaling convention of §II ("multiply by ``10^x`` where ``x`` is the
number of fractional digits"), plus a compact binary format for cached runs.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..baselines._native import TSI64_HDR

__all__ = [
    "scale_to_int",
    "unscale_to_float",
    "write_csv",
    "read_csv",
    "write_binary",
    "read_binary",
]


def scale_to_int(values: np.ndarray, digits: int) -> np.ndarray:
    """Fixed-precision decimals -> int64 (the paper's preprocessing)."""
    return np.round(np.asarray(values, dtype=np.float64) * 10.0**digits).astype(
        np.int64
    )


def unscale_to_float(values: np.ndarray, digits: int) -> np.ndarray:
    """int64 -> decimals (inverse of :func:`scale_to_int`)."""
    return np.asarray(values, dtype=np.float64) / 10.0**digits


def write_csv(path: str | Path, values: np.ndarray, digits: int) -> None:
    """Write int64 values as fixed-precision decimal text, one per line."""
    path = Path(path)
    floats = unscale_to_float(values, digits)
    with path.open("w") as fh:
        for v in floats:
            fh.write(f"{v:.{digits}f}\n")


def read_csv(path: str | Path, digits: int) -> np.ndarray:
    """Read fixed-precision decimal text into int64 values."""
    path = Path(path)
    with path.open() as fh:
        floats = [float(line) for line in fh if line.strip()]
    return scale_to_int(np.array(floats), digits)


_MAGIC = b"TSI64\x00"


def write_binary(path: str | Path, values: np.ndarray, digits: int) -> None:
    """Write int64 values in a compact binary cache format.

    The write is atomic (temp + fsync + rename, the same discipline as the
    archive container): a reader never sees a torn cache file, and a crash
    mid-write leaves the previous cache intact.
    """
    from ..codecs.container import write_atomic

    values = np.asarray(values, dtype=np.int64)
    blob = _MAGIC + TSI64_HDR.pack(len(values), digits) + values.tobytes()
    write_atomic(path, blob)


def read_binary(path: str | Path) -> tuple[np.ndarray, int]:
    """Read a binary cache; returns ``(values, digits)``."""
    data = Path(path).read_bytes()
    if data[:6] != _MAGIC:
        raise ValueError(f"{path}: not a TSI64 file")
    n, digits = TSI64_HDR.unpack_from(data, 6)
    values = np.frombuffer(data, dtype=np.int64, count=n, offset=6 + 12)
    return values.copy(), digits
