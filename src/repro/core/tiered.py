"""Two-tier ingestion store: fast streaming writes, NeaTS at rest.

§IV-C1 of the paper sketches the deployment NeaTS is designed for: "we could
imagine using a lightweight compressor like ALP or Gorilla when the time
series is first ingested, and running NeaTS later on (or in the background)
to provide much more effective compression and efficient query operations in
the long run".  :class:`TieredStore` is that architecture:

* appends land in an uncompressed **write buffer**;
* full buffers are sealed into a **hot tier** with a cheap streaming codec
  (``"gorilla"`` by default — microsecond sealing, weak ratio);
* :meth:`consolidate` migrates sealed hot blocks into the **cold tier**, one
  strongly-compressed run (``"neats"`` by default) — the "background"
  recompression step.

Both tiers take *any* codec from the registry, by id::

    store = TieredStore(hot_codec="zstd", cold_codec="leats")

and every sealed block implements the unified ``Compressed`` protocol, so
the whole store serialises: :meth:`to_bytes` / :meth:`from_bytes` persist
buffer, hot blocks, and cold run in their native framed layouts.

All three tiers answer ``access``/``range`` transparently.
"""

from __future__ import annotations

import json
import struct
import zlib

import numpy as np

__all__ = ["TieredStore"]

_MAGIC = b"RPTS0001"


def _resolve(codec, params: dict | None):
    """A (compressor, codec_id, params) triple from an id or an instance."""
    from ..codecs import get_codec

    if isinstance(codec, str):
        params = dict(params or {})
        return get_codec(codec, **params), codec, params
    # A pre-built compressor instance (legacy API): usable, but the store
    # cannot name it in a persisted header.
    return codec, None, {}


class TieredStore:
    """An append-only time series store with background consolidation.

    Parameters
    ----------
    seal_threshold:
        Buffer size (values) at which a hot block is sealed.
    hot_codec / cold_codec:
        Registry id (e.g. ``"gorilla"``, ``"zstd"``, ``"neats"``) or a
        pre-built compressor instance.  Ids are required for
        :meth:`to_bytes` persistence.
    hot_params / cold_params:
        Constructor params forwarded to the codec factories.
    """

    def __init__(
        self,
        seal_threshold: int = 4096,
        hot_codec="gorilla",
        cold_codec="neats",
        *,
        hot_params: dict | None = None,
        cold_params: dict | None = None,
        hot_compressor=None,
        cold_compressor=None,
    ) -> None:
        if seal_threshold < 1:
            raise ValueError("seal_threshold must be positive")
        # Legacy keyword aliases (pre-registry API) take precedence when given.
        if hot_compressor is not None:
            hot_codec = hot_compressor
        if cold_compressor is not None:
            cold_codec = cold_compressor
        self._seal_threshold = seal_threshold
        self._hot_codec, self._hot_id, self._hot_params = _resolve(
            hot_codec, hot_params
        )
        self._cold_codec, self._cold_id, self._cold_params = _resolve(
            cold_codec, cold_params
        )
        self._buffer: list[int] = []
        self._hot: list = []  # sealed Compressed blocks, in order
        self._hot_counts: list[int] = []
        self._cold = None  # one consolidated Compressed run
        self._cold_count = 0

    # -- ingestion ------------------------------------------------------------

    def append(self, value: int) -> None:
        """Append one value; seals the buffer when it reaches the threshold."""
        self._buffer.append(int(value))
        if len(self._buffer) >= self._seal_threshold:
            self._seal()

    def extend(self, values) -> None:
        """Append many values, sealing full blocks in bulk.

        Equivalent to calling :meth:`append` once per value (block
        boundaries land in the same places), but full
        ``seal_threshold``-sized chunks are compressed directly from the
        input array instead of round-tripping through the Python-level
        write buffer — this is the batch-ingest hot path.
        """
        values = np.asarray(values, dtype=np.int64)
        if values.ndim != 1:
            raise ValueError("expected a 1-D array")
        pos, n = 0, len(values)
        # Top up a partially filled buffer first so chunk boundaries match
        # the per-value path exactly.
        if self._buffer:
            pos = min(self._seal_threshold - len(self._buffer), n)
            self._buffer.extend(values[:pos].tolist())
            if len(self._buffer) >= self._seal_threshold:
                self._seal()
        while n - pos >= self._seal_threshold:
            chunk = values[pos : pos + self._seal_threshold]
            self._hot.append(self._hot_codec.compress(chunk))
            self._hot_counts.append(len(chunk))
            pos += self._seal_threshold
        self._buffer.extend(values[pos:].tolist())

    def adopt_sealed(self, block) -> None:
        """Append an already-compressed hot block (the parallel ingest path).

        ``block`` is any :class:`~repro.baselines.base.Compressed` holding
        values compressed with this store's hot codec — e.g. a frame
        produced by a :func:`repro.store.compress_many_frames` worker.  The
        write buffer is sealed first so global ordering is preserved.
        """
        if (
            self._hot_id is not None
            and block.codec_id is not None
            and block.codec_id != self._hot_id
        ):
            raise ValueError(
                f"adopted block was compressed with {block.codec_id!r}, "
                f"but this store's hot tier is {self._hot_id!r}"
            )
        n = len(block)  # O(1) for registry codecs and loaded frames
        if n < 1:
            raise ValueError("adopted block must hold at least one value")
        self._seal()
        self._hot.append(block)
        self._hot_counts.append(n)

    def _seal(self) -> None:
        if not self._buffer:
            return
        chunk = np.array(self._buffer, dtype=np.int64)
        self._hot.append(self._hot_codec.compress(chunk))
        self._hot_counts.append(len(chunk))
        self._buffer.clear()

    def consolidate(self) -> None:
        """Migrate all sealed hot blocks into the cold tier.

        This is the paper's "run NeaTS later on (or in the background)"
        step; it decodes the hot tier once and recompresses everything
        (including any previous cold data) into a single cold run.
        """
        if not self._hot:
            return
        parts = []
        if self._cold is not None:
            parts.append(self._cold.decompress())
        parts.extend(block.decompress() for block in self._hot)
        merged = np.concatenate(parts)
        self._cold = self._cold_codec.compress(merged)
        self._cold_count = len(merged)
        self._hot.clear()
        self._hot_counts.clear()

    # -- queries ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._cold_count + sum(self._hot_counts) + len(self._buffer)

    def access(self, k: int) -> int:
        """The value at global position ``k``, whatever tier holds it."""
        if not 0 <= k < len(self):
            raise IndexError(k)
        if k < self._cold_count:
            return self._cold.access(k)
        k -= self._cold_count
        for block, count in zip(self._hot, self._hot_counts):
            if k < count:
                return block.access(k)
            k -= count
        return self._buffer[k]

    def range(self, lo: int, hi: int) -> np.ndarray:
        """Values at global positions ``[lo, hi)`` across tiers."""
        if not 0 <= lo <= hi <= len(self):
            raise IndexError((lo, hi))
        out = []
        pos = lo
        while pos < hi:
            if pos < self._cold_count:
                end = min(hi, self._cold_count)
                out.append(self._cold.decompress_range(pos, end))
                pos = end
                continue
            offset = pos - self._cold_count
            consumed = 0
            for block, count in zip(self._hot, self._hot_counts):
                if offset < consumed + count:
                    local_lo = offset - consumed
                    local_hi = min(local_lo + (hi - pos), count)
                    out.append(block.decompress_range(local_lo, local_hi))
                    pos += local_hi - local_lo
                    break
                consumed += count
            else:
                buf_lo = pos - self._cold_count - consumed
                buf_hi = hi - self._cold_count - consumed
                out.append(
                    np.array(self._buffer[buf_lo:buf_hi], dtype=np.int64)
                )
                pos = hi
        return np.concatenate(out) if out else np.empty(0, dtype=np.int64)

    def decompress(self) -> np.ndarray:
        """Every stored value, in order."""
        return self.range(0, len(self))

    # -- accounting ------------------------------------------------------------------

    def size_bits(self) -> int:
        """Total compressed footprint plus the raw write buffer."""
        total = 64 * len(self._buffer)
        total += sum(block.size_bits() for block in self._hot)
        if self._cold is not None:
            total += self._cold.size_bits()
        return total

    def tier_report(self) -> dict:
        """Occupancy by tier — handy for examples and tests."""
        return {
            "buffer_values": len(self._buffer),
            "hot_blocks": len(self._hot),
            "hot_values": sum(self._hot_counts),
            "cold_values": self._cold_count,
            "hot_codec": self._hot_id,
            "cold_codec": self._cold_id,
            "total_bits": self.size_bits(),
        }

    # -- persistence ------------------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialise the whole store: buffer, hot blocks, and cold run.

        Sealed blocks are written in their codecs' framed layouts (see
        :mod:`repro.codecs.serialize`), so nothing is recompressed.
        Requires both tiers to be configured by codec id.
        """
        if self._hot_id is None or self._cold_id is None:
            raise ValueError(
                "persistence requires codec ids; construct the store with "
                "hot_codec/cold_codec strings (e.g. 'gorilla', 'neats') "
                "instead of compressor instances"
            )
        frames = [block.to_bytes() for block in self._hot]
        cold_frame = self._cold.to_bytes() if self._cold is not None else b""
        meta = {
            "seal_threshold": self._seal_threshold,
            "hot_codec": self._hot_id,
            "hot_params": self._hot_params,
            "cold_codec": self._cold_id,
            "cold_params": self._cold_params,
            "hot_counts": self._hot_counts,
            "cold_count": self._cold_count,
            "buffer_len": len(self._buffer),
            "frame_lens": [len(f) for f in frames],
            "cold_frame_len": len(cold_frame),
        }
        meta_b = json.dumps(meta, sort_keys=True).encode("utf-8")
        body = bytearray(struct.pack("<q", len(meta_b)))
        body += meta_b
        body += np.array(self._buffer, dtype=np.int64).tobytes()
        body += cold_frame
        for frame in frames:
            body += frame
        # Same integrity story as the archive container: crc32 over the body
        # so bit rot in a snapshot fails loudly instead of decoding wrong.
        return _MAGIC + struct.pack("<I", zlib.crc32(bytes(body))) + bytes(body)

    @classmethod
    def from_bytes(cls, data) -> "TieredStore":
        """Rebuild a store serialised with :meth:`to_bytes`.

        ``data`` may be any byte buffer; passing a ``memoryview`` (e.g. over
        an mmapped shard file) parses the sealed frames zero-copy — they
        keep referencing the underlying buffer, which must stay alive.
        """
        from ..baselines.base import Compressed

        if len(data) < 20 or data[:8] != _MAGIC:
            raise ValueError("not a TieredStore byte string")
        (crc,) = struct.unpack_from("<I", data, 8)
        if zlib.crc32(data[12:]) != crc:
            raise ValueError("TieredStore snapshot checksum mismatch (corrupt)")
        (meta_len,) = struct.unpack_from("<q", data, 12)
        pos = 20
        try:
            meta = json.loads(bytes(data[pos : pos + meta_len]).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ValueError("corrupt TieredStore header") from exc
        pos += meta_len
        store = cls(
            seal_threshold=meta["seal_threshold"],
            hot_codec=meta["hot_codec"],
            cold_codec=meta["cold_codec"],
            hot_params=meta["hot_params"],
            cold_params=meta["cold_params"],
        )
        # The crc only proves the bytes are what to_bytes wrote, not that the
        # metadata is coherent; a crc-valid snapshot with inconsistent counts
        # must raise here, not decode to wrong answers later.
        hot_counts = [int(c) for c in meta["hot_counts"]]
        frame_lens = list(meta["frame_lens"])
        if len(frame_lens) != len(hot_counts):
            raise ValueError(
                f"corrupt TieredStore snapshot: {len(frame_lens)} hot frames "
                f"but {len(hot_counts)} hot counts"
            )
        buf_len = int(meta["buffer_len"])
        cold_count = int(meta["cold_count"])
        if buf_len < 0 or cold_count < 0 or any(c < 1 for c in hot_counts):
            raise ValueError("corrupt TieredStore snapshot: negative tier count")
        buffer = np.frombuffer(data, dtype=np.int64, count=buf_len, offset=pos)
        store._buffer = buffer.tolist()
        pos += 8 * buf_len
        if meta["cold_frame_len"]:
            end = pos + meta["cold_frame_len"]
            store._cold = Compressed.from_bytes(data[pos:end])
            pos = end
            if len(store._cold) != cold_count:
                raise ValueError(
                    f"corrupt TieredStore snapshot: cold run holds "
                    f"{len(store._cold)} values, metadata says {cold_count}"
                )
        elif cold_count:
            raise ValueError(
                f"corrupt TieredStore snapshot: metadata claims {cold_count} "
                "cold values but no cold frame is present"
            )
        store._cold_count = cold_count
        for frame_len, count in zip(frame_lens, hot_counts):
            end = pos + frame_len
            block = Compressed.from_bytes(data[pos:end])
            if len(block) != count:
                raise ValueError(
                    f"corrupt TieredStore snapshot: hot block holds "
                    f"{len(block)} values, metadata says {count}"
                )
            store._hot.append(block)
            pos = end
        store._hot_counts = hot_counts
        if pos != len(data):
            raise ValueError("corrupt TieredStore byte string: trailing bytes")
        return store
