"""Two-tier ingestion store: fast streaming writes, NeaTS at rest.

§IV-C1 of the paper sketches the deployment NeaTS is designed for: "we could
imagine using a lightweight compressor like ALP or Gorilla when the time
series is first ingested, and running NeaTS later on (or in the background)
to provide much more effective compression and efficient query operations in
the long run".  :class:`TieredStore` is that architecture:

* appends land in an uncompressed **write buffer**;
* full buffers are sealed into a **hot tier** with a cheap streaming codec
  (``"gorilla"`` by default — microsecond sealing, weak ratio);
* :meth:`consolidate` migrates sealed hot blocks into the **cold tier**
  (``"neats"`` by default) — the "background" recompression step.  With a
  lossless cold codec the whole tier is re-merged into one run; with a
  *lossy* cold codec (error-bounded, e.g. ``"neats_l"``) each consolidation
  appends a **new** cold run covering only the migrated hot values, and
  existing runs are never decoded and re-approximated — approximating an
  approximation would compound the error beyond the codec's ε guarantee,
  so every cold run is always an ε-approximation of the *original* values
  it holds.

Both tiers take *any* codec from the registry, by id::

    store = TieredStore(hot_codec="zstd", cold_codec="leats")

and every sealed block implements the unified ``Compressed`` protocol, so
the whole store serialises: :meth:`to_bytes` / :meth:`from_bytes` persist
buffer, hot blocks, and cold run in their native framed layouts.

All three tiers answer ``access``/``range`` transparently.

A :class:`TieredStore` is the per-series engine inside every
``repro.store`` database: one per series in a single-dir
:class:`~repro.store.seriesdb.SeriesDB`, and one per series *per
partition* behind the :class:`~repro.store.partitioned.PartitionedSeriesDB`
façade — the partitioning layer routes to a store like this one and never
changes its tiering behaviour.
"""

from __future__ import annotations

import json
import zlib
from typing import Callable

import numpy as np

from ..baselines._native import INT64, UINT32

__all__ = ["RunIndex", "TieredStore"]

_MAGIC = b"RPTS0001"


class RunIndex:
    """Binary search over the cumulative value counts of ordered runs.

    The multi-run machinery shared by everything that stitches a sequence
    of independently compressed blocks into one logical series: the tiered
    store's cold-runs + hot-blocks chain, and the appendable archive's
    record sequence (:mod:`repro.codecs.container`).  ``locate`` maps a
    global position to ``(run index, local position)`` in O(log runs);
    ``spans`` decomposes a global ``[lo, hi)`` range into per-run slices.
    """

    __slots__ = ("_cum",)

    def __init__(self, counts) -> None:
        self._cum = np.cumsum(np.asarray(list(counts), dtype=np.int64))

    def __len__(self) -> int:
        return len(self._cum)

    @property
    def total(self) -> int:
        """Total values across every run."""
        return int(self._cum[-1]) if len(self._cum) else 0

    def start(self, i: int) -> int:
        """Global position of the first value of run ``i``."""
        return int(self._cum[i - 1]) if i else 0

    def locate(self, k: int) -> tuple[int, int]:
        """``(run index, local position)`` of global position ``k``."""
        i = int(np.searchsorted(self._cum, k, side="right"))
        return i, k - self.start(i)

    def spans(self, lo: int, hi: int):
        """Yield ``(run index, local lo, local hi)`` covering ``[lo, hi)``."""
        if lo >= hi:
            return
        first = int(np.searchsorted(self._cum, lo, side="right"))
        for i in range(first, len(self._cum)):
            start = self.start(i)
            if start >= hi:
                break
            yield i, max(lo, start) - start, min(hi, int(self._cum[i])) - start


def _resolve(codec, params: dict | None):
    """A (compressor, codec_id, params) triple from an id or an instance."""
    from ..codecs import get_codec

    if isinstance(codec, str):
        params = dict(params or {})
        return get_codec(codec, **params), codec, params
    # A pre-built compressor instance (legacy API): usable, but the store
    # cannot name it in a persisted header.
    return codec, None, {}


class TieredStore:
    """An append-only time series store with background consolidation.

    Parameters
    ----------
    seal_threshold:
        Buffer size (values) at which a hot block is sealed.
    hot_codec / cold_codec:
        Registry id (e.g. ``"gorilla"``, ``"zstd"``, ``"neats"``) or a
        pre-built compressor instance.  Ids are required for
        :meth:`to_bytes` persistence.
    hot_params / cold_params:
        Constructor params forwarded to the codec factories.
    """

    def __init__(
        self,
        seal_threshold: int = 4096,
        hot_codec="gorilla",
        cold_codec="neats",
        *,
        hot_params: dict | None = None,
        cold_params: dict | None = None,
        hot_compressor=None,
        cold_compressor=None,
    ) -> None:
        if seal_threshold < 1:
            raise ValueError("seal_threshold must be positive")
        # Legacy keyword aliases (pre-registry API) take precedence when given.
        if hot_compressor is not None:
            hot_codec = hot_compressor
        if cold_compressor is not None:
            cold_codec = cold_compressor
        self._seal_threshold = seal_threshold
        self._hot_codec, self._hot_id, self._hot_params = _resolve(
            hot_codec, hot_params
        )
        self._cold_codec, self._cold_id, self._cold_params = _resolve(
            cold_codec, cold_params
        )
        self._buffer: list[int] = []
        self._hot: list = []  # sealed Compressed blocks, in order
        self._hot_counts: list[int] = []
        self._cold: list = []  # consolidated Compressed runs, in order
        self._cold_counts: list[int] = []
        self._run_index: RunIndex | None = None  # rebuilt after mutations
        # External-synchronisation contract: a TieredStore is NOT
        # thread-safe; whoever shares one across threads owns the locking
        # (SeriesDB holds its RLock around every store call).  An owner —
        # or the REPRO_SANITIZE sanitizer — can arm this hook and every
        # mutating entry point (append/extend/adopt_sealed/consolidate)
        # will call it first, so unsynchronised mutation is detectable
        # instead of silently corrupting tiers.
        self._guard: Callable[[], None] | None = None

    def _assert_guarded(self) -> None:
        if self._guard is not None:
            self._guard()

    # -- ingestion ------------------------------------------------------------

    def append(self, value: int) -> None:
        """Append one value; seals the buffer when it reaches the threshold.

        Not thread-safe: callers sharing this store synchronise externally
        (see ``_guard``).
        """
        self._assert_guarded()
        self._buffer.append(int(value))
        if len(self._buffer) >= self._seal_threshold:
            self._seal()

    def extend(self, values) -> None:
        """Append many values, sealing full blocks in bulk.

        Equivalent to calling :meth:`append` once per value (block
        boundaries land in the same places), but full
        ``seal_threshold``-sized chunks are compressed directly from the
        input array instead of round-tripping through the Python-level
        write buffer — this is the batch-ingest hot path.

        Not thread-safe: callers sharing this store synchronise externally
        (see ``_guard``).
        """
        self._assert_guarded()
        values = np.asarray(values, dtype=np.int64)
        if values.ndim != 1:
            raise ValueError("expected a 1-D array")
        pos, n = 0, len(values)
        # Top up a partially filled buffer first so chunk boundaries match
        # the per-value path exactly.
        if self._buffer:
            pos = min(self._seal_threshold - len(self._buffer), n)
            self._buffer.extend(values[:pos].tolist())
            if len(self._buffer) >= self._seal_threshold:
                self._seal()
        while n - pos >= self._seal_threshold:
            chunk = values[pos : pos + self._seal_threshold]
            self._hot.append(self._hot_codec.compress(chunk))
            self._hot_counts.append(len(chunk))
            self._run_index = None
            pos += self._seal_threshold
        self._buffer.extend(values[pos:].tolist())

    def adopt_sealed(self, block) -> None:
        """Append an already-compressed hot block (the parallel ingest path).

        ``block`` is any :class:`~repro.baselines.base.Compressed` holding
        values compressed with this store's hot codec — e.g. a frame
        produced by a :func:`repro.store.compress_many_frames` worker.  The
        write buffer is sealed first so global ordering is preserved.

        Not thread-safe: callers sharing this store synchronise externally
        (see ``_guard``).
        """
        self._assert_guarded()
        if (
            self._hot_id is not None
            and block.codec_id is not None
            and block.codec_id != self._hot_id
        ):
            raise ValueError(
                f"adopted block was compressed with {block.codec_id!r}, "
                f"but this store's hot tier is {self._hot_id!r}"
            )
        n = len(block)  # O(1) for registry codecs and loaded frames
        if n < 1:
            raise ValueError("adopted block must hold at least one value")
        self._seal()
        self._hot.append(block)
        self._hot_counts.append(n)
        self._run_index = None

    def _seal(self) -> None:
        if not self._buffer:
            return
        chunk = np.array(self._buffer, dtype=np.int64)
        self._hot.append(self._hot_codec.compress(chunk))
        self._hot_counts.append(len(chunk))
        self._run_index = None
        self._buffer.clear()

    def _cold_is_lossy(self) -> bool:
        """Whether the cold codec is error-bounded (registry flag wins)."""
        if self._cold_id is not None:
            from ..codecs import codec_spec

            return codec_spec(self._cold_id).lossy
        from ..baselines.base import LossyCompressor
        from .. import codecs

        # A pre-built instance may be a registry proxy (get_codec output):
        # its spec knows; otherwise unwrap and check the compressor itself.
        spec = getattr(self._cold_codec, "spec", None)
        if isinstance(spec, codecs.CodecSpec):
            return spec.lossy
        inner = getattr(self._cold_codec, "_inner", self._cold_codec)
        return isinstance(inner, LossyCompressor)

    def consolidate(self) -> None:
        """Migrate all sealed hot blocks into the cold tier.

        This is the paper's "run NeaTS later on (or in the background)"
        step.  A lossless cold codec decodes the hot tier (and any
        previous cold runs) and recompresses everything into a single
        run.  A lossy cold codec only ever compresses *exact* values —
        the decoded hot blocks — into a fresh run appended after the
        existing ones, so repeated consolidation never re-approximates an
        approximation and the ε guarantee holds against the originals.

        Not thread-safe: callers sharing this store synchronise externally
        (see ``_guard``).
        """
        self._assert_guarded()
        if not self._hot:
            return
        parts = []
        remerge = bool(self._cold) and not self._cold_is_lossy()
        if remerge:
            parts.extend(run.decompress() for run in self._cold)
        parts.extend(block.decompress() for block in self._hot)
        merged = np.concatenate(parts)
        run = self._cold_codec.compress(merged)
        if remerge:
            self._cold = [run]
            self._cold_counts = [len(merged)]
        else:
            self._cold.append(run)
            self._cold_counts.append(len(merged))
        self._hot.clear()
        self._hot_counts.clear()
        self._run_index = None

    # -- queries ------------------------------------------------------------------

    def __len__(self) -> int:
        return sum(self._cold_counts) + sum(self._hot_counts) + len(self._buffer)

    def _index(self) -> RunIndex:
        """The cumulative-count index over cold runs then hot blocks."""
        if self._run_index is None:
            self._run_index = RunIndex(self._cold_counts + self._hot_counts)
        return self._run_index

    def _run_at(self, i: int):
        """The ``i``-th sealed block in global order (cold first, then hot)."""
        return self._cold[i] if i < len(self._cold) else self._hot[i - len(self._cold)]

    def access(self, k: int) -> int:
        """The value at global position ``k``, whatever tier holds it."""
        if not 0 <= k < len(self):
            raise IndexError(k)
        index = self._index()
        if k < index.total:
            i, local = index.locate(k)
            return self._run_at(i).access(local)
        return self._buffer[k - index.total]

    def range(self, lo: int, hi: int) -> np.ndarray:
        """Values at global positions ``[lo, hi)`` across tiers."""
        if not 0 <= lo <= hi <= len(self):
            raise IndexError((lo, hi))
        index = self._index()
        out = [
            self._run_at(i).decompress_range(a, b)
            for i, a, b in index.spans(lo, min(hi, index.total))
        ]
        if hi > index.total:  # tail lives in the write buffer
            local_lo = max(lo, index.total) - index.total
            out.append(
                np.array(self._buffer[local_lo : hi - index.total], dtype=np.int64)
            )
        return np.concatenate(out) if out else np.empty(0, dtype=np.int64)

    def decompress(self) -> np.ndarray:
        """Every stored value, in order."""
        return self.range(0, len(self))

    # -- accounting ------------------------------------------------------------------

    def size_bits(self) -> int:
        """Total compressed footprint plus the raw write buffer."""
        total = 64 * len(self._buffer)
        total += sum(block.size_bits() for block in self._hot)
        total += sum(run.size_bits() for run in self._cold)
        return total

    def tier_report(self) -> dict:
        """Occupancy by tier — handy for examples and tests."""
        return {
            "buffer_values": len(self._buffer),
            "hot_blocks": len(self._hot),
            "hot_values": sum(self._hot_counts),
            "cold_runs": len(self._cold),
            "cold_values": sum(self._cold_counts),
            "hot_codec": self._hot_id,
            "cold_codec": self._cold_id,
            "total_bits": self.size_bits(),
        }

    # -- persistence ------------------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialise the whole store: buffer, hot blocks, and cold run.

        Sealed blocks are written in their codecs' framed layouts (see
        :mod:`repro.codecs.serialize`), so nothing is recompressed.
        Requires both tiers to be configured by codec id.
        """
        if self._hot_id is None or self._cold_id is None:
            raise ValueError(
                "persistence requires codec ids; construct the store with "
                "hot_codec/cold_codec strings (e.g. 'gorilla', 'neats') "
                "instead of compressor instances"
            )
        frames = [block.to_bytes() for block in self._hot]
        cold_frames = [run.to_bytes() for run in self._cold]
        meta = {
            "seal_threshold": self._seal_threshold,
            "hot_codec": self._hot_id,
            "hot_params": self._hot_params,
            "cold_codec": self._cold_id,
            "cold_params": self._cold_params,
            "hot_counts": self._hot_counts,
            "cold_counts": self._cold_counts,
            "buffer_len": len(self._buffer),
            "frame_lens": [len(f) for f in frames],
            "cold_frame_lens": [len(f) for f in cold_frames],
        }
        meta_b = json.dumps(meta, sort_keys=True).encode("utf-8")
        body = bytearray(INT64.pack(len(meta_b)))
        body += meta_b
        body += np.array(self._buffer, dtype=np.int64).tobytes()
        for frame in cold_frames:
            body += frame
        for frame in frames:
            body += frame
        # Same integrity story as the archive container: crc32 over the body
        # so bit rot in a snapshot fails loudly instead of decoding wrong.
        return _MAGIC + UINT32.pack(zlib.crc32(bytes(body))) + bytes(body)

    @classmethod
    def from_bytes(cls, data) -> "TieredStore":
        """Rebuild a store serialised with :meth:`to_bytes`.

        ``data`` may be any byte buffer; passing a ``memoryview`` (e.g. over
        an mmapped shard file) parses the sealed frames zero-copy — they
        keep referencing the underlying buffer, which must stay alive.
        """
        from ..baselines.base import Compressed

        if len(data) < 20 or data[:8] != _MAGIC:
            raise ValueError("not a TieredStore byte string")
        (crc,) = UINT32.unpack_from(data, 8)
        if zlib.crc32(data[12:]) != crc:
            raise ValueError("TieredStore snapshot checksum mismatch (corrupt)")
        (meta_len,) = INT64.unpack_from(data, 12)
        pos = 20
        try:
            meta = json.loads(bytes(data[pos : pos + meta_len]).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ValueError("corrupt TieredStore header") from exc
        pos += meta_len
        store = cls(
            seal_threshold=meta["seal_threshold"],
            hot_codec=meta["hot_codec"],
            cold_codec=meta["cold_codec"],
            hot_params=meta["hot_params"],
            cold_params=meta["cold_params"],
        )
        # The crc only proves the bytes are what to_bytes wrote, not that the
        # metadata is coherent; a crc-valid snapshot with inconsistent counts
        # must raise here, not decode to wrong answers later.
        hot_counts = [int(c) for c in meta["hot_counts"]]
        frame_lens = list(meta["frame_lens"])
        if len(frame_lens) != len(hot_counts):
            raise ValueError(
                f"corrupt TieredStore snapshot: {len(frame_lens)} hot frames "
                f"but {len(hot_counts)} hot counts"
            )
        if "cold_counts" in meta:
            cold_counts = [int(c) for c in meta["cold_counts"]]
            cold_frame_lens = list(meta["cold_frame_lens"])
        else:  # pre-multi-run snapshot: one optional cold run, singular keys
            cold_counts = [int(meta["cold_count"])] if meta["cold_count"] else []
            cold_frame_lens = (
                [meta["cold_frame_len"]] if meta["cold_frame_len"] else []
            )
        if len(cold_frame_lens) != len(cold_counts):
            raise ValueError(
                f"corrupt TieredStore snapshot: {len(cold_frame_lens)} cold "
                f"frames but {len(cold_counts)} cold counts"
            )
        buf_len = int(meta["buffer_len"])
        if buf_len < 0 or any(c < 1 for c in hot_counts + cold_counts):
            raise ValueError("corrupt TieredStore snapshot: negative tier count")
        buffer = np.frombuffer(data, dtype=np.int64, count=buf_len, offset=pos)
        store._buffer = buffer.tolist()
        pos += 8 * buf_len
        for what, frames, counts, blocks in (
            ("cold run", cold_frame_lens, cold_counts, store._cold),
            ("hot block", frame_lens, hot_counts, store._hot),
        ):
            for frame_len, count in zip(frames, counts):
                end = pos + frame_len
                block = Compressed.from_bytes(data[pos:end])
                if len(block) != count:
                    raise ValueError(
                        f"corrupt TieredStore snapshot: {what} holds "
                        f"{len(block)} values, metadata says {count}"
                    )
                blocks.append(block)
                pos = end
        store._hot_counts = hot_counts
        store._cold_counts = cold_counts
        if pos != len(data):
            raise ValueError("corrupt TieredStore byte string: trailing bytes")
        return store
