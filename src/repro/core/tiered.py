"""Two-tier ingestion store: fast streaming writes, NeaTS at rest.

§IV-C1 of the paper sketches the deployment NeaTS is designed for: "we could
imagine using a lightweight compressor like ALP or Gorilla when the time
series is first ingested, and running NeaTS later on (or in the background)
to provide much more effective compression and efficient query operations in
the long run".  :class:`TieredStore` is that architecture:

* appends land in an uncompressed **write buffer**;
* full buffers are sealed into a **hot tier** with a cheap streaming codec
  (Gorilla by default — microsecond sealing, weak ratio);
* :meth:`consolidate` migrates sealed hot blocks into the **cold tier**, one
  NeaTS-compressed run (strong ratio, native random access) — the
  "background" recompression step.

All three tiers answer ``access``/``range`` transparently.
"""

from __future__ import annotations

import numpy as np

from ..baselines.base import LosslessCompressor
from ..baselines.gorilla import GorillaCompressor
from .compressor import NeaTS

__all__ = ["TieredStore"]


class TieredStore:
    """An append-only time series store with background NeaTS consolidation."""

    def __init__(
        self,
        seal_threshold: int = 4096,
        hot_compressor: LosslessCompressor | None = None,
        cold_compressor: NeaTS | None = None,
    ) -> None:
        if seal_threshold < 1:
            raise ValueError("seal_threshold must be positive")
        self._seal_threshold = seal_threshold
        self._hot_codec = hot_compressor or GorillaCompressor()
        self._cold_codec = cold_compressor or NeaTS()
        self._buffer: list[int] = []
        self._hot: list = []  # sealed Compressed blocks, in order
        self._hot_counts: list[int] = []
        self._cold = None  # one consolidated CompressedSeries
        self._cold_count = 0

    # -- ingestion ------------------------------------------------------------

    def append(self, value: int) -> None:
        """Append one value; seals the buffer when it reaches the threshold."""
        self._buffer.append(int(value))
        if len(self._buffer) >= self._seal_threshold:
            self._seal()

    def extend(self, values) -> None:
        """Append many values."""
        for v in np.asarray(values, dtype=np.int64).tolist():
            self.append(v)

    def _seal(self) -> None:
        if not self._buffer:
            return
        chunk = np.array(self._buffer, dtype=np.int64)
        self._hot.append(self._hot_codec.compress(chunk))
        self._hot_counts.append(len(chunk))
        self._buffer.clear()

    def consolidate(self) -> None:
        """Migrate all sealed hot blocks into the cold NeaTS tier.

        This is the paper's "run NeaTS later on (or in the background)"
        step; it decodes the hot tier once and recompresses everything
        (including any previous cold data) into a single NeaTS run.
        """
        if not self._hot:
            return
        parts = []
        if self._cold is not None:
            parts.append(self._cold.decompress())
        parts.extend(block.decompress() for block in self._hot)
        merged = np.concatenate(parts)
        self._cold = self._cold_codec.compress(merged)
        self._cold_count = len(merged)
        self._hot.clear()
        self._hot_counts.clear()

    # -- queries ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._cold_count + sum(self._hot_counts) + len(self._buffer)

    def access(self, k: int) -> int:
        """The value at global position ``k``, whatever tier holds it."""
        if not 0 <= k < len(self):
            raise IndexError(k)
        if k < self._cold_count:
            return self._cold.access(k)
        k -= self._cold_count
        for block, count in zip(self._hot, self._hot_counts):
            if k < count:
                return block.access(k)
            k -= count
        return self._buffer[k]

    def range(self, lo: int, hi: int) -> np.ndarray:
        """Values at global positions ``[lo, hi)`` across tiers."""
        if not 0 <= lo <= hi <= len(self):
            raise IndexError((lo, hi))
        out = []
        pos = lo
        while pos < hi:
            if pos < self._cold_count:
                end = min(hi, self._cold_count)
                out.append(self._cold.decompress_range(pos, end))
                pos = end
                continue
            offset = pos - self._cold_count
            consumed = 0
            for block, count in zip(self._hot, self._hot_counts):
                if offset < consumed + count:
                    local_lo = offset - consumed
                    local_hi = min(local_lo + (hi - pos), count)
                    out.append(block.decompress_range(local_lo, local_hi))
                    pos += local_hi - local_lo
                    break
                consumed += count
            else:
                buf_lo = pos - self._cold_count - consumed
                buf_hi = hi - self._cold_count - consumed
                out.append(
                    np.array(self._buffer[buf_lo:buf_hi], dtype=np.int64)
                )
                pos = hi
        return np.concatenate(out) if out else np.empty(0, dtype=np.int64)

    def decompress(self) -> np.ndarray:
        """Every stored value, in order."""
        return self.range(0, len(self))

    # -- accounting ------------------------------------------------------------------

    def size_bits(self) -> int:
        """Total compressed footprint plus the raw write buffer."""
        total = 64 * len(self._buffer)
        total += sum(block.size_bits() for block in self._hot)
        if self._cold is not None:
            total += self._cold.size_bits()
        return total

    def tier_report(self) -> dict:
        """Occupancy by tier — handy for examples and tests."""
        return {
            "buffer_values": len(self._buffer),
            "hot_blocks": len(self._hot),
            "hot_values": sum(self._hot_counts),
            "cold_values": self._cold_count,
            "total_bits": self.size_bits(),
        }
