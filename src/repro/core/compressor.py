"""The NeaTS lossless compressor — public API.

This module ties together the partitioner (Algorithm 1) and the succinct
layout (§III-C) into the compressor evaluated in the paper, together with the
two speed-oriented variants of §IV-C1:

* :class:`NeaTS` — the full compressor: nonlinear kinds × error bounds,
  optimal partitioning, Elias-Fano/wavelet-tree layout;
* :func:`NeaTS.linear_only` (**LeaTS**) — restricts ``F`` to linear functions;
* :func:`NeaTS.with_model_selection` (**SNeaTS**) — first partitions a prefix
  sample of the series, keeps the top-``k`` most used ``(f, ε)`` pairs, and
  uses only those for the full series.

Example
-------
>>> import numpy as np
>>> from repro.core.compressor import NeaTS
>>> y = (100 * np.sin(np.arange(2000) / 50)).astype(np.int64)
>>> compressed = NeaTS().compress(y)
>>> bool(np.array_equal(compressed.decompress(), y))
True
>>> int(compressed.access(1234)) == int(y[1234])
True
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from ..baselines.base import Compressed
from .models import DEFAULT_MODELS, get_model
from .partition import Fragment, correction_bits, partition
from .storage import NeaTSStorage

__all__ = ["NeaTS", "CompressedSeries", "default_eps_set"]


def default_eps_set(values: np.ndarray, stride: int = 1) -> list[int]:
    """The error-bound set ``E`` for a series (§III-B complexity analysis).

    The paper bounds ``E`` by ``{0, 2, 4, ..., 2^ceil(log Δ)}`` where ``Δ`` is
    the value range; we use the equivalent exact-width family
    ``{0, 1, 3, 7, ..., 2^b - 1}`` so every ε maps to a distinct correction
    width ``b+1`` and no code space is wasted.  ``stride > 1`` subsamples the
    widths to trade a little compression ratio for partitioning speed.
    """
    values = np.asarray(values)
    if len(values) == 0:
        return [0]
    delta = int(values.max()) - int(values.min()) + 1
    # Widths are capped at 50 bits: larger bounds would make the positivity
    # shift overflow the int64 headroom, and an eps beyond 2^50 is already
    # "the trivial constant function fits everything" territory.
    max_width = min(max(delta.bit_length() - 1, 1), 50)
    eps_set = [0]
    eps_set.extend((1 << b) - 1 for b in range(1, max_width + 1, stride))
    return eps_set


@dataclass
class CompressedSeries(Compressed):
    """The result of :meth:`NeaTS.compress`: storage plus provenance.

    Implements the full :class:`~repro.baselines.base.Compressed` protocol,
    so NeaTS output is interchangeable with every baseline codec — including
    framed serialisation, which delegates to the succinct
    :class:`NeaTSStorage` byte layout (no recompression on load).
    """

    storage: NeaTSStorage
    fragments: list[Fragment]
    original_bits: int

    codec_id = "neats"
    payload_is_native = True

    def decompress(self) -> np.ndarray:
        """Algorithm 2 — the original values."""
        return self.storage.decompress()

    def access(self, k: int) -> int:
        """Algorithm 3 — the value at 0-based position ``k``."""
        return self.storage.access(k)

    def decompress_range(self, lo: int, hi: int) -> np.ndarray:
        """A range query: random access to ``lo``, then a scan to ``hi``."""
        return self.storage.decompress_range(lo, hi)

    def size_bits(self) -> int:
        """Compressed size in bits."""
        return self.storage.size_bits()

    @property
    def n(self) -> int:
        """Number of values (from the storage header, O(1))."""
        return self.storage.n

    @property
    def num_fragments(self) -> int:
        """Number of fragments in the partition."""
        return self.storage.m

    def to_payload(self) -> bytes:
        """Native frame payload: the ``⟨S, B, O, C, K, P⟩`` byte layout."""
        return self.storage.to_bytes()

    @classmethod
    def from_payload(cls, payload: bytes) -> "CompressedSeries":
        """Rebuild from :meth:`to_payload` output.

        The fragment list is provenance of the *compression run* and is not
        stored; deserialised objects carry an empty one.
        """
        storage = NeaTSStorage.from_bytes(payload)
        return cls(storage, [], 64 * storage.n)


class NeaTS:
    """Nonlinear error-bounded approximation compressor for time series.

    Parameters
    ----------
    models:
        The function set ``F`` (names from the model registry).  Defaults to
        the paper's experimental choice: linear, exponential, quadratic,
        radical (§IV-A).
    eps_set:
        The error-bound set ``E``; by default derived per series via
        :func:`default_eps_set`.
    eps_stride:
        Width subsampling for the default ``E`` (ignored when ``eps_set``
        is given).
    rank_mode:
        ``"ef"`` (Elias-Fano rank) or ``"bitvector"`` (O(1) rank) for the
        fragment lookup of Algorithm 3.
    """

    def __init__(
        self,
        models: tuple[str, ...] | list[str] = DEFAULT_MODELS,
        eps_set: list[int] | None = None,
        eps_stride: int = 1,
        rank_mode: str = "ef",
    ) -> None:
        self.models = list(models)
        for name in self.models:
            get_model(name)  # fail fast on typos
        self.eps_set = eps_set
        self.eps_stride = eps_stride
        self.rank_mode = rank_mode

    # -- constructors for the paper's variants --------------------------------

    @classmethod
    def linear_only(cls, **kwargs) -> "NeaTS":
        """**LeaTS**: Algorithm 1 restricted to linear functions (§IV-C1)."""
        kwargs.setdefault("models", ("linear",))
        return cls(**kwargs)

    @classmethod
    def with_model_selection(
        cls,
        sample_fraction: float = 0.10,
        top_k: int = 5,
        **kwargs,
    ) -> "_SNeaTS":
        """**SNeaTS**: model-selection on a prefix sample (§IV-C1).

        Partitions the first ``sample_fraction`` of the series with the full
        ``F × E`` grid, keeps the ``top_k`` most used pairs, and compresses
        the whole series with only those pairs.
        """
        return _SNeaTS(sample_fraction, top_k, **kwargs)

    # -- main entry point ------------------------------------------------------

    def compress(self, values: np.ndarray) -> CompressedSeries:
        """Compress an integer time series losslessly."""
        y = np.asarray(values, dtype=np.int64)
        if y.ndim != 1:
            raise ValueError("expected a 1-D array of values")
        if len(y) == 0:
            raise ValueError("cannot compress an empty series")
        self._check_domain(y)
        eps_set = self.eps_set or default_eps_set(y, self.eps_stride)
        shift = self._shift_for(y, eps_set)
        z = y.astype(np.float64) + shift  # fitting precision only
        z_exact = y + shift  # int64: exact, used for residual measurement
        result = partition(z, list(self.models), [float(e) for e in eps_set])
        storage = NeaTSStorage(z_exact, result.fragments, shift, self.rank_mode)
        return CompressedSeries(storage, result.fragments, 64 * len(y))

    @staticmethod
    def _shift_for(y: np.ndarray, eps_set: list[int]) -> int:
        """Global positivity shift: ``z - max(E) >= 1`` (paper footnote 2)."""
        return int(1 + max(eps_set) - int(y.min()))

    @staticmethod
    def _check_domain(y: np.ndarray) -> None:
        """Reject magnitudes that would overflow the shift arithmetic.

        ``z = y + shift`` and the residuals must stay inside int64; values up
        to ±2^60 leave comfortable headroom (scaled-decimal series in the
        paper's datasets peak around 2^35).
        """
        limit = 1 << 60
        if int(y.max()) >= limit or int(y.min()) <= -limit:
            raise ValueError(
                "values must lie within ±2^60; rescale the series "
                "(e.g. use fewer decimal digits) before compressing"
            )


class _SNeaTS(NeaTS):
    """NeaTS with the sample-based model-selection procedure (§IV-C1)."""

    def __init__(self, sample_fraction: float, top_k: int, **kwargs) -> None:
        super().__init__(**kwargs)
        if not 0 < sample_fraction <= 1:
            raise ValueError("sample_fraction must be in (0, 1]")
        self.sample_fraction = sample_fraction
        self.top_k = top_k

    def compress(self, values: np.ndarray) -> CompressedSeries:
        y = np.asarray(values, dtype=np.int64)
        if len(y) == 0:
            raise ValueError("cannot compress an empty series")
        self._check_domain(y)
        eps_set = self.eps_set or default_eps_set(y, self.eps_stride)
        shift = self._shift_for(y, eps_set)
        z = y.astype(np.float64) + shift

        sample_len = min(max(int(len(y) * self.sample_fraction), 64), len(y))
        sample = partition(
            z[:sample_len], list(self.models), [float(e) for e in eps_set]
        )
        usage = Counter(
            (frag.model_name, frag.eps) for frag in sample.fragments
        )
        top = [pair for pair, _ in usage.most_common(self.top_k)]
        kept_models = sorted({name for name, _ in top})
        kept_eps = sorted({eps for _, eps in top})
        result = partition(z, kept_models, kept_eps)
        storage = NeaTSStorage(y + shift, result.fragments, shift, self.rank_mode)
        return CompressedSeries(storage, result.fragments, 64 * len(y))
