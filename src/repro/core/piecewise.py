"""Piecewise ε-approximation with a single function kind (Corollary 1).

A repeated application of Theorem 1 from ``T[1]`` to ``T[n]`` partitions the
series into the *minimum* number of fragments, each admitting an
ε-approximation of the given kind, in O(n) total time.  This is the building
block both of the PLA baseline (with the linear kind) and of the fragment
enumeration inside Algorithm 1.
"""

from __future__ import annotations

import numpy as np

from .models import FragmentFit, Model, get_model, make_approximation

__all__ = ["piecewise_approximation", "mape", "max_abs_error"]


def piecewise_approximation(
    z: np.ndarray, model: Model | str, eps: float
) -> list[FragmentFit]:
    """Partition ``z`` into the fewest ``model``-kind ε-approximable fragments.

    Parameters
    ----------
    z:
        The (shifted, positive) values indexed by positions ``1..n``.
    model:
        A :class:`~repro.core.models.Model` or its registry name.
    eps:
        The maximum absolute approximation error (L∞ bound).

    Returns
    -------
    list of :class:`~repro.core.models.FragmentFit`
        Consecutive fragments covering ``[0, n)``.
    """
    if isinstance(model, str):
        model = get_model(model)
    if eps < 0:
        raise ValueError("eps must be non-negative")
    fragments: list[FragmentFit] = []
    start = 0
    n = len(z)
    while start < n:
        fit = make_approximation(z, start, model, eps)
        fragments.append(fit)
        start = fit.end
    return fragments


def reconstruct(
    fragments: list[FragmentFit], model: Model | str, n: int
) -> np.ndarray:
    """Evaluate a single-kind piecewise approximation over positions ``1..n``."""
    from ..kernels import evaluate_fragments, get_backend

    if isinstance(model, str):
        model = get_model(model)
    if get_backend() != "python" and len(fragments) > 1:
        return evaluate_fragments(
            [model],
            [0] * len(fragments),
            [frag.start for frag in fragments],
            [frag.end for frag in fragments],
            [frag.params for frag in fragments],
            n,
        )
    out = np.empty(n, dtype=np.float64)
    for frag in fragments:
        xs = np.arange(frag.start + 1, frag.end + 1, dtype=np.float64)
        out[frag.start : frag.end] = model.evaluate(frag.params, xs)
    return out


def max_abs_error(z: np.ndarray, approx: np.ndarray) -> float:
    """L∞ error between the data and its approximation."""
    return float(np.max(np.abs(np.asarray(z, dtype=np.float64) - approx)))


def mape(z: np.ndarray, approx: np.ndarray) -> float:
    """Mean Absolute Percentage Error, as reported in §IV-B.

    Zero values are skipped (their relative error is undefined), matching the
    usual MAPE convention.
    """
    z = np.asarray(z, dtype=np.float64)
    nonzero = z != 0
    if not np.any(nonzero):
        return 0.0
    rel = np.abs((z[nonzero] - approx[nonzero]) / z[nonzero])
    return float(np.mean(rel) * 100.0)
