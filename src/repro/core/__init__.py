"""The paper's primary contribution: NeaTS and its algorithmic components."""

from .aggregates import AggregateIndex, Bounds
from .compressor import CompressedSeries, NeaTS, default_eps_set
from .convex import RangeLineFitter
from .lossy import LossySeries, NeaTSLossy
from .models import (
    ALL_MODELS,
    DEFAULT_MODELS,
    MODEL_REGISTRY,
    FragmentFit,
    Model,
    get_model,
    make_approximation,
)
from .paramshare import SharedParams, compact_fragments, quantise_params
from .partition import Fragment, PartitionResult, correction_bits, partition, partition_lossy
from .piecewise import mape, max_abs_error, piecewise_approximation
from .storage import NeaTSStorage
from .tiered import TieredStore
from .timestamps import TimestampedSeries

__all__ = [
    "NeaTS",
    "AggregateIndex",
    "Bounds",
    "TieredStore",
    "TimestampedSeries",
    "SharedParams",
    "compact_fragments",
    "quantise_params",
    "CompressedSeries",
    "NeaTSLossy",
    "LossySeries",
    "NeaTSStorage",
    "RangeLineFitter",
    "Model",
    "FragmentFit",
    "Fragment",
    "PartitionResult",
    "MODEL_REGISTRY",
    "DEFAULT_MODELS",
    "ALL_MODELS",
    "get_model",
    "make_approximation",
    "partition",
    "partition_lossy",
    "correction_bits",
    "piecewise_approximation",
    "mape",
    "max_abs_error",
    "default_eps_set",
]
