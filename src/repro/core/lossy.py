"""NeaTS-L: the lossy compressor with a maximum-error guarantee (§III-B).

NeaTS-L keeps the optimal partitioning machinery of Algorithm 1 but drops the
corrections: ``E = {ε}`` and the edge weight counts only the storage of the
function parameters, so the shortest path minimises the total space of the
(lossy) piecewise nonlinear ε-approximation.  The output guarantees
``|f(x_k) - y_k| <= ε`` for every point (L∞ bound).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .models import DEFAULT_MODELS, get_model
from .partition import Fragment, PARAM_BITS, FRAGMENT_OVERHEAD_BITS, partition_lossy
from .piecewise import mape, max_abs_error

__all__ = ["NeaTSLossy", "LossySeries"]


@dataclass
class LossySeries:
    """A lossy piecewise-functional representation of a time series."""

    fragments: list[Fragment]
    n: int
    shift: int
    eps: float
    original_bits: int

    def reconstruct(self) -> np.ndarray:
        """Evaluate the approximation at every position (float64)."""
        out = np.empty(self.n, dtype=np.float64)
        for frag in self.fragments:
            model = get_model(frag.model_name)
            xs = np.arange(frag.start + 1, frag.end + 1, dtype=np.float64)
            out[frag.start : frag.end] = model.evaluate(frag.params, xs)
        return out - self.shift

    def reconstruct_int(self) -> np.ndarray:
        """The approximation floored to integers, as NeaTS would decode it."""
        out = np.empty(self.n, dtype=np.int64)
        for frag in self.fragments:
            model = get_model(frag.model_name)
            xs = np.arange(frag.start + 1, frag.end + 1, dtype=np.float64)
            vals = np.floor(model.evaluate(frag.params, xs)).astype(np.int64)
            out[frag.start : frag.end] = vals
        return out - self.shift

    def access(self, k: int) -> float:
        """The approximated value at 0-based position ``k``."""
        lo, hi = 0, len(self.fragments) - 1
        while lo < hi:  # binary search over fragment starts
            mid = (lo + hi + 1) // 2
            if self.fragments[mid].start <= k:
                lo = mid
            else:
                hi = mid - 1
        frag = self.fragments[lo]
        model = get_model(frag.model_name)
        return model.evaluate_at(frag.params, k + 1) - self.shift

    def size_bits(self) -> int:
        """Size of the lossy representation: parameters plus metadata."""
        return sum(
            get_model(f.model_name).n_params * PARAM_BITS + FRAGMENT_OVERHEAD_BITS
            for f in self.fragments
        ) + 64 * 2

    def compression_ratio(self) -> float:
        """Compressed size / original size."""
        return self.size_bits() / self.original_bits

    def max_error(self, y: np.ndarray) -> float:
        """Measured L∞ error against the original values."""
        return max_abs_error(np.asarray(y, dtype=np.float64), self.reconstruct())

    def mape(self, y: np.ndarray) -> float:
        """Mean Absolute Percentage Error against the original values (§IV-B)."""
        return mape(np.asarray(y, dtype=np.float64), self.reconstruct())


class NeaTSLossy:
    """Lossy error-bounded compressor using nonlinear functional approximations.

    Parameters
    ----------
    eps:
        The L∞ error bound (in original value units).
    models:
        The function set ``F``; defaults to the paper's four kinds.
    """

    def __init__(
        self, eps: float, models: tuple[str, ...] | list[str] = DEFAULT_MODELS
    ) -> None:
        if eps < 0:
            raise ValueError("eps must be non-negative")
        self.eps = float(eps)
        self.models = list(models)
        for name in self.models:
            get_model(name)

    def compress(self, values: np.ndarray) -> LossySeries:
        """Build the minimum-space lossy ε-representation of ``values``."""
        y = np.asarray(values, dtype=np.int64)
        if len(y) == 0:
            raise ValueError("cannot compress an empty series")
        shift = int(1 + np.ceil(self.eps) - int(y.min()))
        z = y.astype(np.float64) + shift
        result = partition_lossy(z, list(self.models), self.eps)
        return LossySeries(
            result.fragments, len(y), shift, self.eps, 64 * len(y)
        )
