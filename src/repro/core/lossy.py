"""NeaTS-L: the lossy compressor with a maximum-error guarantee (§III-B).

NeaTS-L keeps the optimal partitioning machinery of Algorithm 1 but drops the
corrections: ``E = {ε}`` and the edge weight counts only the storage of the
function parameters, so the shortest path minimises the total space of the
(lossy) piecewise nonlinear ε-approximation.  The output guarantees
``|f(x_k) - y_k| <= ε`` for every point (L∞ bound).

:class:`LossySeries` implements the full
:class:`~repro.baselines.base.LossyCompressed` protocol, so NeaTS-L output is
a peer of every lossless codec: it serialises to a native frame (the fitted
fragments themselves — raw float64 parameters, so a saved archive reproduces
the exact approximation without re-running the partitioner), answers random
access in O(log m), and travels through ``repro.save`` / ``repro.open`` /
``SeriesDB`` like any other compressed series.
"""

from __future__ import annotations

import numpy as np

from ..baselines._native import (
    FLOAT64,
    LOSSY_HDR as _PAYLOAD_HDR,
    pack_name,
    pack_segment,
    unpack_name,
    unpack_segment,
)
from ..baselines.base import LossyCompressed, LossyCompressor, validate_eps
from .models import DEFAULT_MODELS, get_model
from .partition import Fragment, PARAM_BITS, FRAGMENT_OVERHEAD_BITS, partition_lossy

__all__ = ["NeaTSLossy", "LossySeries"]


class LossySeries(LossyCompressed):
    """A lossy piecewise-functional representation of a time series."""

    def __init__(
        self,
        fragments: list[Fragment],
        n: int,
        shift: int,
        eps: float,
    ) -> None:
        self.fragments = fragments
        self._n = int(n)
        self.shift = int(shift)
        self.eps = float(eps)

    def _evaluate_all(self) -> np.ndarray:
        """The raw (unshifted) approximation at every position, float64."""
        from ..kernels import evaluate_fragments, get_backend

        if get_backend() != "python" and len(self.fragments) > 1:
            names: list[str] = []
            kind_of: dict[str, int] = {}
            kinds = []
            for frag in self.fragments:
                if frag.model_name not in kind_of:
                    kind_of[frag.model_name] = len(names)
                    names.append(frag.model_name)
                kinds.append(kind_of[frag.model_name])
            return evaluate_fragments(
                [get_model(name) for name in names],
                kinds,
                [frag.start for frag in self.fragments],
                [frag.end for frag in self.fragments],
                [frag.params for frag in self.fragments],
                self.n,
            )
        out = np.empty(self.n, dtype=np.float64)
        for frag in self.fragments:
            model = get_model(frag.model_name)
            xs = np.arange(frag.start + 1, frag.end + 1, dtype=np.float64)
            out[frag.start : frag.end] = model.evaluate(frag.params, xs)
        return out

    def reconstruct(self) -> np.ndarray:
        """Evaluate the approximation at every position (float64)."""
        return self._evaluate_all() - self.shift

    def reconstruct_int(self) -> np.ndarray:
        """The approximation floored to integers, as NeaTS would decode it."""
        return np.floor(self._evaluate_all()).astype(np.int64) - self.shift

    def access(self, k: int) -> float:
        """The approximated value at 0-based position ``k``."""
        frag = self._segment_at(self.fragments, self._check_position(k))
        model = get_model(frag.model_name)
        return model.evaluate_at(frag.params, k + 1) - self.shift

    def size_bits(self) -> int:
        """Size of the lossy representation: parameters plus metadata."""
        return sum(
            get_model(f.model_name).n_params * PARAM_BITS + FRAGMENT_OVERHEAD_BITS
            for f in self.fragments
        ) + 64 * 2

    @property
    def num_segments(self) -> int:
        """Number of fragments in the partition."""
        return len(self.fragments)

    # -- native frame payload --------------------------------------------------

    def to_payload(self) -> bytes:
        """Native layout: header + per-fragment model name, ε, and parameters."""
        parts = [_PAYLOAD_HDR.pack(self.n, self.shift, self.eps,
                                   len(self.fragments))]
        for frag in self.fragments:
            parts.append(pack_name(frag.model_name))
            parts.append(FLOAT64.pack(frag.eps))
            parts.append(pack_segment(frag.start, frag.end, frag.params))
        return b"".join(parts)

    @classmethod
    def from_payload(cls, payload) -> "LossySeries":
        """Rebuild from :meth:`to_payload` output (any byte buffer)."""
        what = "NeaTS-L payload"
        view = payload if isinstance(payload, memoryview) else memoryview(payload)
        if view.nbytes < _PAYLOAD_HDR.size:
            raise ValueError(f"corrupt {what}: truncated header")
        n, shift, eps, n_frags = _PAYLOAD_HDR.unpack_from(view)
        if n < 1:
            raise ValueError(f"corrupt {what}: bad value count {n}")
        pos = _PAYLOAD_HDR.size
        fragments = []
        expected_start = 0
        for _ in range(n_frags):
            name, pos = unpack_name(view, pos, what)
            get_model(name)  # unknown model kinds fail here, loudly
            if pos + 8 > view.nbytes:
                raise ValueError(f"corrupt {what}: truncated fragment bound")
            (frag_eps,) = FLOAT64.unpack_from(view, pos)
            (start, end, params), pos = unpack_segment(view, pos + 8, what)
            if start != expected_start or end > n:
                raise ValueError(
                    f"corrupt {what}: fragments do not tile [0, {n})"
                )
            expected_start = end
            fragments.append(Fragment(start, end, name, frag_eps, params))
        if expected_start != n or pos != view.nbytes:
            raise ValueError(f"corrupt {what}: fragments do not tile [0, {n})")
        return cls(fragments, n, shift, eps)


class NeaTSLossy(LossyCompressor):
    """Lossy error-bounded compressor using nonlinear functional approximations.

    Parameters
    ----------
    eps:
        The L∞ error bound (in original value units); positive and finite.
    models:
        The function set ``F``; defaults to the paper's four kinds.
    """

    name = "NeaTS-L"
    native_random_access = True

    def __init__(
        self, eps: float, models: tuple[str, ...] | list[str] = DEFAULT_MODELS
    ) -> None:
        self.eps = validate_eps(eps)
        self.models = list(models)
        for name in self.models:
            get_model(name)

    def compress(self, values: np.ndarray) -> LossySeries:
        """Build the minimum-space lossy ε-representation of ``values``."""
        y = np.asarray(values, dtype=np.int64)
        if len(y) == 0:
            raise ValueError("cannot compress an empty series")
        shift = int(1 + np.ceil(self.eps) - int(y.min()))
        z = y.astype(np.float64) + shift
        result = partition_lossy(z, list(self.models), self.eps)
        return LossySeries(result.fragments, len(y), shift, self.eps)
