"""Vectorised precomputation of Theorem-1 transforms.

``make_approximation`` calls ``model.transform`` once per point per
``(f, ε)`` pair; for the two-parameter models every transform is a pure
function of ``x`` (known upfront) and ``z ± ε`` (vectorisable with numpy).
Precomputing the ``(t, lo, hi)`` arrays once per pair removes all per-point
``math.log``/division work from the partitioning inner loop — an interpreter-
level optimisation with no algorithmic effect (DESIGN.md notes that absolute
speed is not the reproduction target, but a ~2x faster Algorithm 1 makes the
benchmark suite far more pleasant).

Anchored (three-parameter) models depend on the fragment's first point and
cannot be precomputed; they keep the scalar path.
"""

from __future__ import annotations

import numpy as np

from .convex import RangeLineFitter
from .models import FragmentFit, Model

__all__ = ["PairTransform", "precompute_transform"]


class PairTransform:
    """Precomputed ``(t, lo, hi)`` arrays for one ``(model, ε)`` pair."""

    __slots__ = ("model", "eps", "t", "lo", "hi", "n")

    def __init__(self, model: Model, eps: float, t, lo, hi) -> None:
        self.model = model
        self.eps = eps
        self.t = t  # python lists: fastest scalar indexing
        self.lo = lo
        self.hi = hi
        self.n = len(t)

    def longest_fragment(self, start: int) -> FragmentFit:
        """Equivalent of ``make_approximation`` using the cached transforms."""
        fitter = RangeLineFitter()
        add = fitter.add
        t, lo, hi = self.t, self.lo, self.hi
        k = start
        n = self.n
        while k < n and add(t[k], lo[k], hi[k]):
            k += 1
        if k == start:  # first point rejected: cannot happen post-shift
            raise RuntimeError(
                f"model {self.model.name!r} cannot start at index {start}"
            )
        m, b = fitter.line()
        return FragmentFit(start, k, self.model.params_from_line(m, b))


def precompute_transform(
    model: Model, eps: float, z: np.ndarray
) -> PairTransform | None:
    """Build a :class:`PairTransform`, or None for models without one."""
    if model.n_params != 2:
        return None
    n = len(z)
    xs = np.arange(1, n + 1, dtype=np.float64)
    zf = np.asarray(z, dtype=np.float64)
    name = model.name
    if name == "linear":
        t, lo, hi = xs, zf - eps, zf + eps
    elif name == "exponential":
        t = xs
        lo = np.log(np.maximum(zf - eps, 1e-12))
        hi = np.log(np.maximum(zf + eps, 1e-12))
    elif name == "power":
        t = np.log(xs)
        lo = np.log(np.maximum(zf - eps, 1e-12))
        hi = np.log(np.maximum(zf + eps, 1e-12))
    elif name == "logarithmic":
        t, lo, hi = np.log(xs), zf - eps, zf + eps
    elif name == "radical":
        t, lo, hi = np.sqrt(xs), zf - eps, zf + eps
    elif name == "quadratic":
        t, lo, hi = xs * xs, zf - eps, zf + eps
    elif name == "quadratic_linear":
        t, lo, hi = xs, (zf - eps) / xs, (zf + eps) / xs
    elif name == "cubic_linear":
        t, lo, hi = xs * xs, (zf - eps) / xs, (zf + eps) / xs
    elif name == "cubic_quadratic":
        sq = xs * xs
        t, lo, hi = xs, (zf - eps) / sq, (zf + eps) / sq
    else:
        # Unknown two-parameter model: fall back to the scalar path.
        return None
    return PairTransform(model, eps, t.tolist(), lo.tolist(), hi.tolist())
