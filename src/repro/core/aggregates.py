"""Aggregate queries over NeaTS-compressed data (paper §VI, future work).

The paper suggests "exploiting the information encoded by the functions to
efficiently answer aggregate queries".  This module implements that idea:

* **Exact sums** in O(fragments touched) instead of O(points): at build time
  we store, per fragment, the sum of its decoded values (function floor plus
  correction); a range sum then decodes only the two *boundary* fragments and
  reads the precomputed sums of the interior ones.
* **Bounded min/max/avg** without decoding at all: every fragment's function
  is monotone-friendly and its corrections are bounded by its ε, so
  ``f(range) ± ε`` brackets the true extrema.  The index returns an interval
  that is guaranteed to contain the exact answer — often enough for
  dashboards and anomaly thresholds, at zero decode cost.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .storage import NeaTSStorage

__all__ = ["AggregateIndex", "Bounds"]


@dataclass(frozen=True)
class Bounds:
    """A certified interval containing the exact answer."""

    low: float
    high: float

    def __contains__(self, value: float) -> bool:
        return self.low - 1e-9 <= value <= self.high + 1e-9

    @property
    def width(self) -> float:
        """Tightness of the bracket."""
        return self.high - self.low


class AggregateIndex:
    """Per-fragment aggregate summaries over a :class:`NeaTSStorage`.

    Construction decodes the series once (O(n)); afterwards every range sum
    costs O(points in the two boundary fragments + fragments spanned), and
    min/max bounds cost O(fragments spanned) with no decoding.
    """

    def __init__(self, storage: NeaTSStorage) -> None:
        self._storage = storage
        m = storage.m
        sums = np.zeros(m, dtype=np.int64)
        mins = np.zeros(m, dtype=np.int64)
        maxs = np.zeros(m, dtype=np.int64)
        for i in range(m):
            start = storage._starts_list[i]
            end = storage._starts_list[i + 1] if i + 1 < m else storage.n
            chunk = storage.decompress_range(start, end)
            sums[i] = chunk.sum()
            mins[i] = chunk.min()
            maxs[i] = chunk.max()
        self._sums = sums
        self._mins = mins
        self._maxs = maxs
        # Prefix sums let interior runs collapse to one subtraction.
        self._prefix = np.concatenate([[0], np.cumsum(sums)])

    # -- helpers ---------------------------------------------------------------

    def _fragment_bounds(self, i: int) -> tuple[int, int]:
        storage = self._storage
        start = storage._starts_list[i]
        end = storage._starts_list[i + 1] if i + 1 < storage.m else storage.n
        return start, end

    def _check_range(self, lo: int, hi: int) -> None:
        if not 0 <= lo <= hi <= self._storage.n:
            raise IndexError(f"range [{lo}, {hi}) out of bounds")

    # -- exact aggregates ----------------------------------------------------------

    def sum(self, lo: int, hi: int) -> int:
        """Exact sum of values in positions ``[lo, hi)``."""
        self._check_range(lo, hi)
        if lo == hi:
            return 0
        storage = self._storage
        first = storage.fragment_index(lo)
        last = storage.fragment_index(hi - 1)
        f_start, f_end = self._fragment_bounds(first)
        if first == last:
            if lo == f_start and hi == f_end:
                return int(self._sums[first])
            return int(storage.decompress_range(lo, hi).sum())
        total = 0
        # Left boundary fragment (possibly partial).
        if lo == f_start:
            total += int(self._sums[first])
        else:
            total += int(storage.decompress_range(lo, f_end).sum())
        # Interior fragments: one prefix-sum subtraction.
        total += int(self._prefix[last] - self._prefix[first + 1])
        # Right boundary fragment (possibly partial).
        l_start, l_end = self._fragment_bounds(last)
        if hi == l_end:
            total += int(self._sums[last])
        else:
            total += int(storage.decompress_range(l_start, hi).sum())
        return total

    def mean(self, lo: int, hi: int) -> float:
        """Exact mean of values in positions ``[lo, hi)``."""
        self._check_range(lo, hi)
        if lo == hi:
            raise ValueError("mean of an empty range")
        return self.sum(lo, hi) / (hi - lo)

    # -- certified bounds (no decoding) ------------------------------------------

    def min_bounds(self, lo: int, hi: int) -> Bounds:
        """An interval certified to contain ``min(values[lo:hi])``.

        Whole fragments contribute their exact min; a partial boundary
        fragment contributes its fragment-level min as a *lower* bound and
        its decoded boundary min would be exact — we stay decode-free, so the
        upper end uses the fragment max (the partial min can't exceed it).
        """
        self._check_range(lo, hi)
        if lo == hi:
            raise ValueError("bounds of an empty range")
        low, high = None, None
        storage = self._storage
        first = storage.fragment_index(lo)
        last = storage.fragment_index(hi - 1)
        for i in range(first, last + 1):
            f_start, f_end = self._fragment_bounds(i)
            whole = lo <= f_start and f_end <= hi
            lo_i = int(self._mins[i])
            hi_i = int(self._mins[i]) if whole else int(self._maxs[i])
            low = lo_i if low is None else min(low, lo_i)
            high = hi_i if high is None else min(high, hi_i)
        return Bounds(float(low), float(high))

    def max_bounds(self, lo: int, hi: int) -> Bounds:
        """An interval certified to contain ``max(values[lo:hi])``."""
        self._check_range(lo, hi)
        if lo == hi:
            raise ValueError("bounds of an empty range")
        low, high = None, None
        storage = self._storage
        first = storage.fragment_index(lo)
        last = storage.fragment_index(hi - 1)
        for i in range(first, last + 1):
            f_start, f_end = self._fragment_bounds(i)
            whole = lo <= f_start and f_end <= hi
            hi_i = int(self._maxs[i])
            lo_i = int(self._maxs[i]) if whole else int(self._mins[i])
            low = lo_i if low is None else max(low, lo_i)
            high = hi_i if high is None else max(high, hi_i)
        return Bounds(float(low), float(high))

    def size_bits(self) -> int:
        """Extra space of the aggregate summaries (3 int64 per fragment)."""
        return 3 * 64 * self._storage.m + 64
