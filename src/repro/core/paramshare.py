"""Model-parameter compression (paper §VI: "further compressing the models").

The paper's first future-work item is to shrink the per-fragment function
parameters by "exploiting similarities between functions" (as SimPiece [84]
does for linear pieces).  This module implements two compatible techniques:

* **Quantisation** — parameters are rounded to float32 (or an arbitrary grid)
  *before* the residuals are computed, so the corrections absorb the
  quantisation error and losslessness is untouched; only the correction
  widths can grow (the storage builder re-measures them anyway).
* **Deduplication** — identical (post-quantisation) parameter tuples are
  stored once in a dictionary; fragments keep a short packed index.  Highly
  regular series (repeated shapes, staircase sensors) often reuse a handful
  of functions.

``compact_fragments`` is a drop-in preprocessing step between Algorithm 1 and
the storage builder; ``SharedParams`` measures the space of the dictionary
encoding.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..bits.packed import PackedArray, min_width
from .partition import Fragment

__all__ = ["compact_fragments", "SharedParams", "quantise_params"]


def quantise_params(
    params: tuple[float, ...], precision: str = "float32"
) -> tuple[float, ...]:
    """Round parameters to a lower-precision grid.

    ``"float64"`` is the identity; ``"float32"`` halves the parameter
    storage; ``"bf16"`` quarters it (via float32 with truncated mantissa).
    """
    if precision == "float64":
        return params
    if precision == "float32":
        return tuple(float(np.float32(p)) for p in params)
    if precision == "bf16":
        out = []
        for p in params:
            raw = np.float32(p).view(np.uint32) & np.uint32(0xFFFF0000)
            out.append(float(raw.view(np.float32)))
        return tuple(out)
    raise ValueError(f"unknown precision {precision!r}")


def param_bits(precision: str) -> int:
    """Stored bits per parameter under a precision setting."""
    return {"float64": 64, "float32": 32, "bf16": 16}[precision]


def compact_fragments(
    fragments: list[Fragment], precision: str = "float32"
) -> list[Fragment]:
    """Quantise every fragment's parameters (losslessness is preserved
    because the storage builder recomputes residuals from these params)."""
    return [
        Fragment(
            f.start, f.end, f.model_name, f.eps,
            quantise_params(f.params, precision),
        )
        for f in fragments
    ]


@dataclass
class SharedParams:
    """Dictionary encoding of fragment parameters.

    Collects the distinct (quantised) parameter tuples, stores each once,
    and replaces per-fragment parameters with a packed dictionary index.
    """

    precision: str
    dictionary: list[tuple[float, ...]]
    indexes: PackedArray
    n_fragments: int

    @classmethod
    def build(
        cls, fragments: list[Fragment], precision: str = "float32"
    ) -> "SharedParams":
        seen: dict[tuple[float, ...], int] = {}
        idxs: list[int] = []
        for f in fragments:
            q = quantise_params(f.params, precision)
            if q not in seen:
                seen[q] = len(seen)
            idxs.append(seen[q])
        width = min_width(max(len(seen) - 1, 0))
        return cls(
            precision=precision,
            dictionary=list(seen),
            indexes=PackedArray(idxs, width=width),
            n_fragments=len(fragments),
        )

    @property
    def distinct(self) -> int:
        """Number of unique parameter tuples."""
        return len(self.dictionary)

    def params_of(self, fragment_index: int) -> tuple[float, ...]:
        """The (quantised) parameters of one fragment."""
        return self.dictionary[self.indexes[fragment_index]]

    def size_bits(self) -> int:
        """Dictionary + per-fragment indexes."""
        per_param = param_bits(self.precision)
        dict_bits = sum(len(t) * per_param for t in self.dictionary)
        return dict_bits + self.indexes.size_bits() + 64

    def plain_size_bits(self) -> int:
        """What the same parameters cost without sharing."""
        per_param = param_bits(self.precision)
        total = 0
        for idx in self.indexes:
            total += len(self.dictionary[idx]) * per_param
        return total

    def saving_ratio(self) -> float:
        """Fraction of parameter space saved by the dictionary (can be < 0)."""
        plain = self.plain_size_bits()
        if plain == 0:
            return 0.0
        return 1.0 - self.size_bits() / plain
