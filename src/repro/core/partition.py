"""Algorithm 1: space-optimal partitioning of a time series.

Given a set ``F`` of function kinds and a set ``E`` of error bounds, the
partitioner builds (implicitly) the fragment DAG of the paper — one node per
data point plus a sink, one edge ``(i, j)`` per ε-approximable fragment
``T[i, j-1]`` together with all its prefix and suffix edges — and finds the
shortest path from node 1 to node ``n+1`` under the bit-cost weight

    ``w(i, j) = (j - i) * ceil(log2(2ε + 1)) + κ_f``

(the corrections plus the function storage), which is exactly the size of the
NeaTS encoding of that fragment.  Edges are enumerated *on the fly*: for every
``(f, ε)`` pair we keep only the single fragment overlapping the node being
relaxed, as in the paper, which brings the memory down to O(n + |F||E|) and
the time to O(|F| |E| n).

The same routine with ``E = {ε}`` and a weight of ``κ_f`` alone yields the
lossy partitioner of NeaTS-L (§III-B, "Partitioning for lossy compression").
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .models import FragmentFit, Model, get_model, make_approximation

__all__ = [
    "Fragment",
    "PartitionResult",
    "correction_bits",
    "partition",
    "partition_lossy",
]

#: bits charged per stored function parameter (float64)
PARAM_BITS = 64
#: estimated per-fragment metadata bits: S/B/O/K entries plus their share of
#: the rank/select directories (measured on the actual layout, see DESIGN.md)
FRAGMENT_OVERHEAD_BITS = 96


@dataclass(frozen=True)
class Fragment:
    """One fragment of the final partition: ``[start, end)`` 0-based."""

    start: int
    end: int
    model_name: str
    eps: float
    params: tuple[float, ...]

    @property
    def length(self) -> int:
        """Number of data points covered."""
        return self.end - self.start


@dataclass(frozen=True)
class PartitionResult:
    """The output of Algorithm 1 plus the optimal objective value."""

    fragments: list[Fragment]
    cost_bits: float


def correction_bits(eps: float) -> int:
    """``ceil(log2(2ε + 1))`` — bits per correction for error bound ε."""
    if eps < 0:
        raise ValueError("eps must be non-negative")
    return math.ceil(math.log2(2 * eps + 1)) if eps > 0 else 0


def _model_cost_bits(model: Model) -> int:
    """κ_f: storage of the parameters plus per-fragment metadata."""
    return model.n_params * PARAM_BITS + FRAGMENT_OVERHEAD_BITS


def partition(
    z: np.ndarray,
    models: list[Model | str],
    eps_set: list[float],
    lossy: bool = False,
) -> PartitionResult:
    """Run Algorithm 1 on the shifted values ``z``.

    Parameters
    ----------
    z:
        Shifted positive values (see :mod:`repro.core.models` conventions).
    models:
        The set ``F`` of function kinds.
    eps_set:
        The set ``E`` of error bounds.
    lossy:
        When true, corrections are dropped from the weight (NeaTS-L mode):
        the objective counts only the function parameters.

    Returns
    -------
    :class:`PartitionResult`
        The fragments of the optimal partition, in order, and the achieved
        total bit cost.
    """
    n = len(z)
    if n == 0:
        return PartitionResult([], 0.0)
    resolved = [get_model(m) if isinstance(m, str) else m for m in models]
    if not resolved:
        raise ValueError("need at least one model kind")
    if not eps_set:
        raise ValueError("need at least one error bound")

    from .transforms import precompute_transform

    pairs: list[tuple[Model, float, int, int]] = []
    cached: list = []
    for model in resolved:
        kappa = _model_cost_bits(model)
        for eps in eps_set:
            cbits = 0 if lossy else correction_bits(eps)
            pairs.append((model, eps, cbits, kappa))
            cached.append(precompute_transform(model, eps, z))

    INF = float("inf")
    distance = [INF] * (n + 1)
    distance[0] = 0.0
    # previous[v] = (u, pair_index, params): fragment [u, v) via that pair.
    previous: list[tuple[int, int, tuple[float, ...]] | None] = [None] * (n + 1)
    # Current fragment per pair: None or a FragmentFit with start <= k < end.
    current: list[FragmentFit | None] = [None] * len(pairs)

    for k in range(n):
        dk = distance[k]
        for idx, (model, eps, cbits, kappa) in enumerate(pairs):
            frag = current[idx]
            if frag is None or frag.end <= k:
                # A new edge must be opened at k (line 10 of Algorithm 1).
                pre = cached[idx]
                if pre is not None:
                    frag = pre.longest_fragment(k)
                else:
                    frag = make_approximation(z, k, model, eps)
                current[idx] = frag
            else:
                # Relax the prefix edge (frag.start, k) — lines 12-15.
                i = frag.start
                w = (k - i) * cbits + kappa
                cand = distance[i] + w
                if cand < distance[k]:
                    distance[k] = cand
                    previous[k] = (i, idx, frag.params)
                    dk = cand
        # Relax suffix edges (k, frag.end) — lines 16-20.
        dk = distance[k]
        for idx, (model, eps, cbits, kappa) in enumerate(pairs):
            frag = current[idx]
            j = frag.end
            w = (j - k) * cbits + kappa
            cand = dk + w
            if cand < distance[j]:
                distance[j] = cand
                previous[j] = (k, idx, frag.params)

    # Read the shortest path backwards (lines 21-26).
    fragments: list[Fragment] = []
    v = n
    while v > 0:
        entry = previous[v]
        if entry is None:  # pragma: no cover - the DAG is always connected
            raise RuntimeError(f"no path reaches node {v}")
        u, idx, params = entry
        model, eps, _, _ = pairs[idx]
        fragments.append(Fragment(u, v, model.name, eps, params))
        v = u
    fragments.reverse()
    return PartitionResult(fragments, distance[n])


def partition_lossy(
    z: np.ndarray, models: list[Model | str], eps: float
) -> PartitionResult:
    """The lossy variant: a single ε, weight = parameter storage only.

    Runs in O(|F| n) and minimises the space of the functions alone, since
    the corrections are discarded (§III-B).
    """
    return partition(z, models, [eps], lossy=True)
