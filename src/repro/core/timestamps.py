"""Timestamped series support (paper footnote 5 and §III-C assumption).

NeaTS proper stores only the values ``y_1..y_n``, assuming timestamps are
``1..n``.  Real series carry arbitrary increasing timestamps; footnote 5
points at two ways to map them to ranks: monotone minimal perfect hashing
(very succinct, no range support) or *compressed rank structures* — which
"take more space but enable range queries over timestamps".  This module
implements the latter with the Elias-Fano substrate: timestamps go into an
EF sequence (O(1) access, fast predecessor), values into NeaTS, and
time-window queries become two EF ranks plus one NeaTS range scan.
"""

from __future__ import annotations

import numpy as np

from ..bits import EliasFano
from .compressor import CompressedSeries, NeaTS

__all__ = ["TimestampedSeries"]


class TimestampedSeries:
    """A compressed ``(timestamp, value)`` series with time-window queries."""

    def __init__(
        self,
        timestamps: np.ndarray,
        values: np.ndarray,
        compressor: NeaTS | None = None,
    ) -> None:
        timestamps = np.asarray(timestamps, dtype=np.int64)
        values = np.asarray(values, dtype=np.int64)
        if timestamps.ndim != 1 or values.ndim != 1:
            raise ValueError("timestamps and values must be 1-D")
        if len(timestamps) != len(values):
            raise ValueError("timestamps and values must have equal length")
        if len(timestamps) == 0:
            raise ValueError("empty series")
        if np.any(np.diff(timestamps) <= 0):
            raise ValueError("timestamps must be strictly increasing")
        if timestamps[0] < 0:
            raise ValueError("timestamps must be non-negative")
        self._ts = EliasFano(
            timestamps.tolist(), universe=int(timestamps[-1]) + 1
        )
        self._values: CompressedSeries = (compressor or NeaTS()).compress(values)
        self.n = len(values)

    # -- point queries -----------------------------------------------------------

    def timestamp_at(self, i: int) -> int:
        """The ``i``-th timestamp (0-based)."""
        return self._ts[i]

    def value_at(self, i: int) -> int:
        """The ``i``-th value."""
        return self._values.access(i)

    def value_at_time(self, t: int) -> int:
        """The value recorded exactly at time ``t``.

        Raises ``KeyError`` when no sample has that timestamp.
        """
        rank = self._ts.rank(t)
        if rank == 0 or self._ts[rank - 1] != t:
            raise KeyError(f"no sample at time {t}")
        return self._values.access(rank - 1)

    def value_at_or_before(self, t: int) -> tuple[int, int]:
        """The latest ``(timestamp, value)`` pair with timestamp <= ``t``."""
        rank = self._ts.rank(t)
        if rank == 0:
            raise KeyError(f"no sample at or before time {t}")
        return self._ts[rank - 1], self._values.access(rank - 1)

    # -- window queries -------------------------------------------------------------

    def index_range(self, t_lo: int, t_hi: int) -> tuple[int, int]:
        """Positions of samples with timestamps in ``[t_lo, t_hi)``."""
        if t_hi < t_lo:
            raise ValueError("t_hi must be >= t_lo")
        return self._ts.rank(t_lo - 1), self._ts.rank(t_hi - 1)

    def window(self, t_lo: int, t_hi: int) -> tuple[np.ndarray, np.ndarray]:
        """All ``(timestamps, values)`` with timestamps in ``[t_lo, t_hi)``.

        One EF rank for each endpoint, then a NeaTS range scan — the range
        query pattern of the paper's Figure 4, lifted to the time domain.
        """
        lo, hi = self.index_range(t_lo, t_hi)
        values = self._values.decompress_range(lo, hi)
        stamps = np.array([self._ts[i] for i in range(lo, hi)], dtype=np.int64)
        return stamps, values

    # -- bulk -----------------------------------------------------------------------

    def decompress(self) -> tuple[np.ndarray, np.ndarray]:
        """The full ``(timestamps, values)`` arrays."""
        return (
            np.array(self._ts.to_list(), dtype=np.int64),
            self._values.decompress(),
        )

    def size_bits(self) -> int:
        """Total space: EF timestamps plus the NeaTS payload."""
        return self._ts.size_bits() + self._values.size_bits()

    def compression_ratio(self) -> float:
        """Compressed size over raw ``(int64, int64)`` pairs."""
        return self.size_bits() / (128 * self.n)
