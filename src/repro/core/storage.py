"""The NeaTS compressed layout ``⟨S, B, O, C, K, P⟩`` (§III-C).

Given the fragments produced by Algorithm 1, this module builds the succinct
representation the paper describes:

* ``S``  — fragment start positions; Elias-Fano (default) or a plain
  bitvector of length ``n`` with O(1) rank (the paper's constant-time
  alternative).
* ``B``  — per-fragment correction bit widths, packed.
* ``O``  — cumulative correction bit offsets, Elias-Fano.
* ``C``  — the corrections themselves, a bit string; correction ``c`` of a
  fragment with width ``w`` is stored biased as ``c + 2^(w-1)``.
* ``K``  — per-fragment function kinds, a wavelet tree.
* ``P``  — per-kind concatenated parameter arrays, indexed by ``K.rank``.

and implements Algorithm 2 (full decompression, vectorised per fragment) and
Algorithm 3 (random access).

A note on exactness: the fitted parameters come from float64 geometry, so a
residual can land one past ±ε.  The builder measures the *actual* residuals of
every fragment and widens its correction width when required (``B`` is
per-fragment anyway), making the lossless guarantee unconditional.
"""

from __future__ import annotations

import math
import numpy as np

from ..baselines._native import INT64, INT64_PAIR, NEATS_HDR
from ..bits import BitReader, BitWriter, BitVector, EliasFano, PackedArray, WaveletTree
from ..bits.packed import unpack_bits, unpack_fields
from .models import Model, get_model
from .partition import Fragment, correction_bits

__all__ = ["NeaTSStorage"]

_MAGIC = b"NeaTS101"

# Function evaluations are clamped into a safe int64 sub-range before the
# float -> int cast; encoder and decoder apply the same clamp, so residuals
# cancel exactly even when a model overflows between data points.
_CLAMP = float(1 << 62)


def _floor_i64(values: np.ndarray) -> np.ndarray:
    """Vectorised ``floor`` with a symmetric int64-safe clamp."""
    floored = np.floor(values)
    floored = np.nan_to_num(floored, nan=0.0, posinf=_CLAMP, neginf=-_CLAMP)
    return np.clip(floored, -_CLAMP, _CLAMP).astype(np.int64)


def _floor_i64_scalar(value: float) -> int:
    """Scalar twin of :func:`_floor_i64` (the random access hot path)."""
    if value != value:  # nan
        return 0
    if value >= _CLAMP:
        return int(_CLAMP)
    if value <= -_CLAMP:
        return -int(_CLAMP)
    return math.floor(value)


def _required_width(cmin: int, cmax: int, base_width: int) -> int:
    """Smallest width ``w >= base_width`` whose biased range holds [cmin, cmax]."""
    w = base_width
    while w < 64:
        if w == 0:
            if cmin == 0 and cmax == 0:
                return 0
        else:
            half = 1 << (w - 1)
            if -half <= cmin and cmax <= half - 1:
                return w
        w += 1
    raise OverflowError("corrections do not fit in 64 bits")


class NeaTSStorage:
    """Immutable compressed representation of one integer time series."""

    def __init__(
        self,
        z: np.ndarray,
        fragments: list[Fragment],
        shift: int,
        rank_mode: str = "ef",
    ) -> None:
        """Build the layout from shifted values ``z`` and a fragment partition.

        Parameters
        ----------
        z:
            The shifted values (``y + shift``) the fragments were fitted on,
            as **exact integers** (int64).  Passing float64 is accepted for
            values within float precision, but residuals are always measured
            against the integer values: for series whose magnitude exceeds
            2^53 the float image of ``y + shift`` is rounded, and residuals
            computed against it would silently corrupt the lossless
            guarantee.  The functions themselves are evaluated in float64 on
            both the encode and decode paths, so *their* rounding cancels.
        fragments:
            Consecutive fragments covering ``[0, len(z))``.
        shift:
            The global positivity shift, stored so decoding returns ``y``.
        rank_mode:
            ``"ef"`` for Elias-Fano starts (compressed, O(log) rank) or
            ``"bitvector"`` for the O(1)-rank bitvector of length ``n``.
        """
        n = len(z)
        if fragments and (fragments[0].start != 0 or fragments[-1].end != n):
            raise ValueError("fragments must exactly cover the series")
        for a, b in zip(fragments, fragments[1:]):
            if a.end != b.start:
                raise ValueError("fragments must be consecutive")
        if rank_mode not in ("ef", "bitvector"):
            raise ValueError(f"unknown rank mode {rank_mode!r}")

        self.n = n
        self.m = len(fragments)
        self.shift = shift
        self.rank_mode = rank_mode

        model_names = sorted({f.model_name for f in fragments})
        self.model_names = model_names
        self._models: list[Model] = [get_model(name) for name in model_names]
        kind_of = {name: i for i, name in enumerate(model_names)}

        starts: list[int] = []
        widths: list[int] = []
        kinds: list[int] = []
        params_per_kind: list[list[float]] = [[] for _ in model_names]
        corrections = BitWriter()
        offsets: list[int] = [0]

        z_exact = np.asarray(z)
        if z_exact.dtype != np.int64:
            z_exact = np.round(z_exact).astype(np.int64)
        for frag in fragments:
            model = get_model(frag.model_name)
            xs = np.arange(frag.start + 1, frag.end + 1, dtype=np.float64)
            approx = _floor_i64(model.evaluate(frag.params, xs))
            resid = z_exact[frag.start : frag.end] - approx
            base = correction_bits(frag.eps)
            width = _required_width(int(resid.min()), int(resid.max()), base)
            bias = (1 << (width - 1)) if width else 0
            for c in resid.tolist():
                corrections.write(int(c) + bias, width)
            starts.append(frag.start)
            widths.append(width)
            kinds.append(kind_of[frag.model_name])
            params_per_kind[kind_of[frag.model_name]].extend(frag.params)
            offsets.append(offsets[-1] + width * frag.length)

        self.S = EliasFano(starts, universe=max(n, 1))
        if rank_mode == "bitvector":
            bits = np.zeros(n, dtype=np.uint8)
            bits[starts] = 1
            self.S_bv: BitVector | None = BitVector(bits.tolist())
        else:
            self.S_bv = None
        self.B = PackedArray(widths, width=6)
        self.O = EliasFano(offsets, universe=offsets[-1] + 1)
        self._corrections = BitReader(corrections.getbuffer(), corrections.bit_length)
        self.K = WaveletTree(kinds, sigma=len(model_names))
        self.P = [
            np.array(p, dtype=np.float64).reshape(-1, self._models[i].n_params)
            for i, p in enumerate(params_per_kind)
        ]

        # Hot-path caches for random access: python lists avoid numpy scalars.
        self._widths_list = widths
        self._starts_list = starts
        self._kinds_list = kinds
        self._offsets_list = offsets
        self._param_index = []
        counters = [0] * len(model_names)
        for kind in kinds:
            self._param_index.append(counters[kind])
            counters[kind] += 1
        self._params_cache = [
            tuple(map(float, self.P[kind][pi]))
            for kind, pi in zip(kinds, self._param_index)
        ]

    # -- queries -------------------------------------------------------------

    def fragment_index(self, k: int) -> int:
        """The index of the fragment covering 0-based position ``k``.

        Uses ``S.rank`` (Elias-Fano mode) or the O(1) bitvector rank, exactly
        as discussed at the end of §III-C.
        """
        if not 0 <= k < self.n:
            raise IndexError(f"position {k} out of range [0, {self.n})")
        if self.S_bv is not None:
            return self.S_bv.rank1(k + 1) - 1
        return self.S.rank(k) - 1

    def access(self, k: int) -> int:
        """Algorithm 3: the original value at 0-based position ``k``."""
        i = self.fragment_index(k)
        start = self._starts_list[i]
        kind = self._kinds_list[i]
        model = self._models[kind]
        params = self._params_cache[i]
        width = self._widths_list[i]
        approx = _floor_i64_scalar(model.evaluate_at(params, k + 1))
        if width:
            o = self._offsets_list[i] + (k - start) * width
            u = self._corrections.peek_at(o, width)
            approx += u - (1 << (width - 1))
        return approx - self.shift

    def decompress(self) -> np.ndarray:
        """Algorithm 2: the full original series as an int64 array."""
        from ..kernels import get_backend

        if get_backend() != "python" and self.m > 1:
            return self._decompress_batched()
        out = np.empty(self.n, dtype=np.int64)
        for i in range(self.m):
            start = self._starts_list[i]
            end = self._starts_list[i + 1] if i + 1 < self.m else self.n
            self._decode_fragment(i, start, end, out[start:end])
        return out

    def _decompress_batched(self) -> np.ndarray:
        """One vectorised pass over all fragments (accelerated backends).

        Function values come from a single
        :func:`~repro.kernels.segments.evaluate_fragments` call; corrections
        are then unbiased per distinct width with one gather each, so the
        cost no longer scales with the fragment count.
        """
        from ..kernels import evaluate_fragments
        from ..kernels.segments import position_ramp

        starts = np.asarray(self._starts_list, dtype=np.int64)
        ends = np.append(starts[1:], self.n)
        approx = _floor_i64(
            evaluate_fragments(
                self._models,
                self._kinds_list,
                self._starts_list,
                ends,
                self._params_cache,
                self.n,
            )
        )
        widths = np.asarray(self._widths_list, dtype=np.int64)
        offsets = np.asarray(self._offsets_list[:-1], dtype=np.int64)
        lengths = ends - starts
        for w in np.unique(widths):
            w = int(w)
            if w == 0:
                continue
            sel = np.nonzero(widths == w)[0]
            ls = lengths[sel]
            within = np.arange(int(ls.sum()), dtype=np.int64) - np.repeat(
                np.cumsum(ls) - ls, ls
            )
            bit_starts = np.repeat(offsets[sel], ls) + within * w
            raw = unpack_fields(self._corrections.words, bit_starts, w)
            idx = position_ramp(starts[sel], ls)
            approx[idx] += raw.astype(np.int64) - (1 << (w - 1))
        return approx - self.shift

    def decompress_range(self, lo: int, hi: int) -> np.ndarray:
        """Values at 0-based positions ``[lo, hi)`` — a random access + scan."""
        if not 0 <= lo <= hi <= self.n:
            raise IndexError(f"range [{lo}, {hi}) out of bounds for n={self.n}")
        out = np.empty(hi - lo, dtype=np.int64)
        if lo == hi:
            return out
        i = self.fragment_index(lo)
        pos = lo
        while pos < hi:
            start = self._starts_list[i]
            end = self._starts_list[i + 1] if i + 1 < self.m else self.n
            a = max(start, lo)
            b = min(end, hi)
            self._decode_fragment(i, a, b, out[a - lo : b - lo])
            pos = b
            i += 1
        return out

    def _decode_fragment(self, i: int, a: int, b: int, out: np.ndarray) -> None:
        """Decode positions ``[a, b)`` of fragment ``i`` into ``out``."""
        start = self._starts_list[i]
        kind = self._kinds_list[i]
        model = self._models[kind]
        params = self._params_cache[i]
        width = self._widths_list[i]
        xs = np.arange(a + 1, b + 1, dtype=np.float64)
        approx = _floor_i64(model.evaluate(params, xs))
        if width:
            offset = self._offsets_list[i] + (a - start) * width
            raw = unpack_bits(self._corrections.words, width, b - a, offset)
            approx += raw.astype(np.int64) - (1 << (width - 1))
        out[:] = approx - self.shift

    # -- size accounting -------------------------------------------------------

    def size_bits(self) -> int:
        """Total space of the compressed representation, in bits."""
        total = 64 * 4  # header: n, m, shift, flags
        total += self.S.size_bits()
        if self.S_bv is not None:
            total += self.S_bv.size_bits()
        total += self.B.size_bits()
        total += self.O.size_bits()
        total += self._corrections.bit_length
        total += self.K.size_bits()
        total += sum(p.size * 64 for p in self.P)
        total += 16 * len(self.model_names)  # kind directory
        return total

    def size_bytes(self) -> int:
        """Total space in bytes (rounded up)."""
        return (self.size_bits() + 7) // 8

    # -- serialisation -----------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialise to a portable byte string."""
        out = bytearray(_MAGIC)
        names = ",".join(self.model_names).encode()
        out += NEATS_HDR.pack(
            self.n, self.m, self.shift, len(names),
            1 if self.S_bv is not None else 0,
        )
        out += names
        out += INT64.pack(len(self._starts_list))
        out += np.array(self._starts_list, dtype=np.int64).tobytes()
        out += np.array(self._widths_list, dtype=np.int8).tobytes()
        out += np.array(self._kinds_list, dtype=np.int8).tobytes()
        for p in self.P:
            out += INT64.pack(p.size)
            out += p.tobytes()
        out += INT64_PAIR.pack(
            self._corrections.bit_length, len(self._corrections.words)
        )
        out += self._corrections.words.tobytes()
        return bytes(out)

    @classmethod
    def from_bytes(cls, data) -> "NeaTSStorage":
        """Rebuild a storage object from :meth:`to_bytes` output.

        ``data`` may be any byte buffer (``bytes``, ``memoryview``, an mmap
        slice); the big arrays are adopted zero-copy via ``np.frombuffer``.
        """
        if data[:8] != _MAGIC:
            raise ValueError("not a NeaTS byte string")
        pos = 8
        n, m, shift, name_len, has_bv = NEATS_HDR.unpack_from(data, pos)
        pos += NEATS_HDR.size
        names = (
            bytes(data[pos : pos + name_len]).decode().split(",")
            if name_len
            else []
        )
        pos += name_len
        (m2,) = INT64.unpack_from(data, pos)
        pos += 8
        starts = np.frombuffer(data, dtype=np.int64, count=m2, offset=pos)
        pos += 8 * m2
        widths = np.frombuffer(data, dtype=np.int8, count=m2, offset=pos)
        pos += m2
        kinds = np.frombuffer(data, dtype=np.int8, count=m2, offset=pos)
        pos += m2
        params = []
        for _ in names:
            (cnt,) = INT64.unpack_from(data, pos)
            pos += 8
            arr = np.frombuffer(data, dtype=np.float64, count=cnt, offset=pos)
            pos += 8 * cnt
            params.append(arr)
        cbits, nwords = INT64_PAIR.unpack_from(data, pos)
        pos += 16
        words = np.frombuffer(data, dtype=np.uint64, count=nwords, offset=pos)

        # Reassemble fragments and rebuild through the normal constructor by
        # reconstructing values: decode directly instead (cheaper): we bypass
        # __init__ and fill the fields by hand.
        obj = cls.__new__(cls)
        obj.n = n
        obj.m = m
        obj.shift = shift
        obj.rank_mode = "bitvector" if has_bv else "ef"
        obj.model_names = names
        obj._models = [get_model(name) for name in names]
        starts_list = starts.tolist()
        widths_list = widths.tolist()
        kinds_list = kinds.tolist()
        obj._starts_list = starts_list
        obj._widths_list = widths_list
        obj._kinds_list = kinds_list
        lengths = [
            (starts_list[i + 1] if i + 1 < m else n) - starts_list[i]
            for i in range(m)
        ]
        offsets = [0]
        for w, length in zip(widths_list, lengths):
            offsets.append(offsets[-1] + w * length)
        obj._offsets_list = offsets
        obj.S = EliasFano(starts_list, universe=max(n, 1))
        if has_bv:
            bits = np.zeros(n, dtype=np.uint8)
            bits[starts_list] = 1
            obj.S_bv = BitVector(bits.tolist())
        else:
            obj.S_bv = None
        obj.B = PackedArray(widths_list, width=6)
        obj.O = EliasFano(offsets, universe=offsets[-1] + 1)
        obj._corrections = BitReader(words.copy(), cbits)
        obj.K = WaveletTree(kinds_list, sigma=max(len(names), 1))
        obj.P = [
            params[i].reshape(-1, obj._models[i].n_params) for i in range(len(names))
        ]
        obj._param_index = []
        counters = [0] * len(names)
        for kind in kinds_list:
            obj._param_index.append(counters[kind])
            counters[kind] += 1
        obj._params_cache = [
            tuple(map(float, obj.P[kind][pi]))
            for kind, pi in zip(kinds_list, obj._param_index)
        ]
        return obj
