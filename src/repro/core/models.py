"""Function models for nonlinear ε-approximation (Table I of the paper).

Each model kind knows how to

1. *transform* a data point ``(x, z)`` and an error bound ``ε`` into the
   ``(t_k, α_k, ω_k)`` triple of Theorem 1, so that fitting reduces to the
   segment-stabbing problem solved by :class:`~repro.core.convex.RangeLineFitter`;
2. *recover* its natural parameters ``θ`` from the fitted line ``(m, b)`` via
   the inverse change of variables; and
3. *evaluate* ``f(x)`` (vectorised) from the stored parameters, which is what
   decompression and random access use.

Conventions
-----------
* ``x`` is the **absolute 1-based** position in the time series, exactly as in
  the paper (timestamps are assumed to be ``1, ..., n``, §III-C).  Absolute
  coordinates are what make the prefix/suffix edges of Algorithm 1 sound: a
  suffix fragment reuses a function fitted from an earlier start, which is
  only an ε-approximation of the suffix when evaluated at the original
  abscissae (a horizontally shifted quadratic ``θ1·x² + θ2`` has a linear
  term, i.e. it leaves its own family).
* ``z`` is the **globally shifted** value ``y + shift`` with
  ``shift = 1 + max(E) - min(y)`` (paper footnote 2), so that ``z - ε >= 1``
  and logarithmic transforms are always defined.
* Models with three natural parameters (anchored quadratic, Gaussian) are
  forced through the fragment's first data point, as described in §III-A, and
  store the derived third parameter explicitly.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from .convex import RangeLineFitter

__all__ = [
    "Model",
    "FragmentFit",
    "LinearModel",
    "ExponentialModel",
    "PowerModel",
    "LogarithmicModel",
    "RadicalModel",
    "QuadraticModel",
    "QuadraticLinearModel",
    "CubicLinearModel",
    "CubicQuadraticModel",
    "AnchoredQuadraticModel",
    "GaussianModel",
    "MODEL_REGISTRY",
    "DEFAULT_MODELS",
    "ALL_MODELS",
    "get_model",
    "make_approximation",
]

_LOG_FLOOR = 1e-12  # safety clamp: never feed log a non-positive value


@dataclass(frozen=True)
class FragmentFit:
    """The result of fitting one fragment: ``[start, end)`` with ``params``."""

    start: int
    end: int
    params: tuple[float, ...]


class Model(ABC):
    """A function family usable in Theorem 1."""

    #: short identifier used in headers and reports
    name: str = "?"
    #: number of stored float parameters
    n_params: int = 2

    @abstractmethod
    def transform(self, x: int, z: float, eps: float) -> tuple[float, float, float]:
        """Map a data point to the ``(t, lo, hi)`` triple of Theorem 1."""

    @abstractmethod
    def params_from_line(self, m: float, b: float) -> tuple[float, ...]:
        """Invert the change of variables: line coefficients -> ``θ``."""

    @abstractmethod
    def evaluate(self, params: tuple[float, ...], xs: np.ndarray) -> np.ndarray:
        """Vectorised ``f(x)`` over absolute 1-based positions ``xs`` (float64)."""

    def new_fitter(
        self, anchor_x: int | None = None, anchor_z: float | None = None
    ) -> "_ModelFitter":
        """A per-fragment incremental fitter for this model."""
        return _ModelFitter(self)

    def evaluate_at(self, params: tuple[float, ...], x: int) -> float:
        """Scalar ``f(x)`` — the random-access hot path (Algorithm 3, line 6).

        Overridden per model with plain ``math`` arithmetic; building a
        one-element numpy array here would dominate the access latency.
        """
        return float(self.evaluate(params, np.array([x], dtype=np.float64))[0])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Model {self.name}>"


class _ModelFitter:
    """Incremental fragment fitter for a two-parameter model."""

    __slots__ = ("model", "fitter", "eps", "n")

    def __init__(self, model: Model) -> None:
        self.model = model
        self.fitter = RangeLineFitter()
        self.eps = 0.0
        self.n = 0

    def add(self, x: int, z: float, eps: float) -> bool:
        """Try to extend the fragment with the point at absolute position ``x``."""
        self.eps = eps
        t, lo, hi = self.model.transform(x, z, eps)
        if not (math.isfinite(t) and math.isfinite(lo) and math.isfinite(hi)):
            return False
        if not self.fitter.add(t, lo, hi):
            return False
        self.n += 1
        return True

    def params(self) -> tuple[float, ...]:
        """Parameters of a feasible function for the accepted points."""
        m, b = self.fitter.line()
        return self.model.params_from_line(m, b)


class _AnchoredFitter:
    """Fitter for three-parameter models forced through the first point."""

    __slots__ = ("model", "fitter", "anchor_x", "anchor_z", "n")

    def __init__(
        self,
        model: "AnchoredQuadraticModel | GaussianModel",
        anchor_x: int,
        anchor_z: float,
    ) -> None:
        self.model = model
        self.fitter = RangeLineFitter()
        self.anchor_x = anchor_x
        self.anchor_z = anchor_z
        self.n = 1  # the anchor itself

    def add(self, x: int, z: float, eps: float) -> bool:
        t, lo, hi = self.model.transform_anchored(
            x, z, eps, self.anchor_x, self.anchor_z
        )
        if not (math.isfinite(t) and math.isfinite(lo) and math.isfinite(hi)):
            return False
        if lo > hi:
            return False
        if not self.fitter.add(t, lo, hi):
            return False
        self.n += 1
        return True

    def params(self) -> tuple[float, ...]:
        if self.fitter.count == 0:
            return self.model.params_from_anchor_only(self.anchor_x, self.anchor_z)
        m, b = self.fitter.line()
        return self.model.params_from_line_anchored(
            m, b, self.anchor_x, self.anchor_z
        )


# ---------------------------------------------------------------------------
# Two-parameter models (rows of Table I)
# ---------------------------------------------------------------------------


class LinearModel(Model):
    """``f(x) = θ1·x + θ2`` — row 4 of Table I."""

    name = "linear"

    def transform(self, x, z, eps):
        return float(x), z - eps, z + eps

    def params_from_line(self, m, b):
        return (m, b)

    def evaluate(self, params, xs):
        t1, t2 = params
        return t1 * xs + t2



    def evaluate_at(self, params, x):
        return params[0] * x + params[1]
class ExponentialModel(Model):
    """``f(x) = θ2·e^(θ1·x)`` — row 1 of Table I.

    Parameters are stored in the transformed domain, ``(θ1, ln θ2)``: the
    change of variables is invertible (all Theorem 1 requires) and the log
    form avoids overflow — with absolute abscissae the fitted intercept
    ``ln θ2`` can exceed the float64 exponent range even when ``f`` itself is
    perfectly tame over the fragment.
    """

    name = "exponential"

    def transform(self, x, z, eps):
        lo = math.log(max(z - eps, _LOG_FLOOR))
        hi = math.log(max(z + eps, _LOG_FLOOR))
        return float(x), lo, hi

    def params_from_line(self, m, b):
        return (m, b)

    def evaluate(self, params, xs):
        t1, t2 = params
        return np.exp(np.minimum(t1 * xs + t2, 700.0))



    def evaluate_at(self, params, x):
        return math.exp(min(params[0] * x + params[1], 700.0))
class PowerModel(Model):
    """``f(x) = θ2·x^θ1`` — row 2 of Table I.

    Stored as ``(θ1, ln θ2)`` for the same overflow reason as
    :class:`ExponentialModel`; evaluation is ``exp(θ1·ln x + ln θ2)``.
    """

    name = "power"

    def transform(self, x, z, eps):
        lo = math.log(max(z - eps, _LOG_FLOOR))
        hi = math.log(max(z + eps, _LOG_FLOOR))
        return math.log(x), lo, hi

    def params_from_line(self, m, b):
        return (m, b)

    def evaluate(self, params, xs):
        t1, t2 = params
        return np.exp(np.minimum(t1 * np.log(xs) + t2, 700.0))



    def evaluate_at(self, params, x):
        return math.exp(min(params[0] * math.log(x) + params[1], 700.0))
class LogarithmicModel(Model):
    """``f(x) = ln(θ2·x^θ1) = θ1·ln(x) + ln(θ2)`` — row 3 of Table I.

    We store ``ln(θ2)`` (the fitted intercept ``b``) rather than ``θ2``
    itself: the two are related by an invertible map (Theorem 1 only needs
    invertibility) and the logarithm avoids overflow for large intercepts.
    """

    name = "logarithmic"

    def transform(self, x, z, eps):
        return math.log(x), z - eps, z + eps

    def params_from_line(self, m, b):
        return (m, b)

    def evaluate(self, params, xs):
        t1, t2 = params
        return t1 * np.log(xs) + t2



    def evaluate_at(self, params, x):
        return params[0] * math.log(x) + params[1]
class RadicalModel(Model):
    """``f(x) = θ1·√x + θ2`` — row 5 of Table I."""

    name = "radical"

    def transform(self, x, z, eps):
        return math.sqrt(x), z - eps, z + eps

    def params_from_line(self, m, b):
        return (m, b)

    def evaluate(self, params, xs):
        t1, t2 = params
        return t1 * np.sqrt(xs) + t2



    def evaluate_at(self, params, x):
        return params[0] * math.sqrt(x) + params[1]
class QuadraticModel(Model):
    """``f(x) = θ1·x² + θ2`` — row 6 of Table I."""

    name = "quadratic"

    def transform(self, x, z, eps):
        return float(x) * float(x), z - eps, z + eps

    def params_from_line(self, m, b):
        return (m, b)

    def evaluate(self, params, xs):
        t1, t2 = params
        return t1 * xs * xs + t2



    def evaluate_at(self, params, x):
        return params[0] * x * x + params[1]
class QuadraticLinearModel(Model):
    """``f(x) = θ1·x² + θ2·x`` — row 7 of Table I."""

    name = "quadratic_linear"

    def transform(self, x, z, eps):
        fx = float(x)
        return fx, (z - eps) / fx, (z + eps) / fx

    def params_from_line(self, m, b):
        return (m, b)

    def evaluate(self, params, xs):
        t1, t2 = params
        return (t1 * xs + t2) * xs



    def evaluate_at(self, params, x):
        return (params[0] * x + params[1]) * x
class CubicLinearModel(Model):
    """``f(x) = θ1·x³ + θ2·x`` — row 8 of Table I."""

    name = "cubic_linear"

    def transform(self, x, z, eps):
        fx = float(x)
        return fx * fx, (z - eps) / fx, (z + eps) / fx

    def params_from_line(self, m, b):
        return (m, b)

    def evaluate(self, params, xs):
        t1, t2 = params
        return (t1 * xs * xs + t2) * xs



    def evaluate_at(self, params, x):
        return (params[0] * x * x + params[1]) * x
class CubicQuadraticModel(Model):
    """``f(x) = θ1·x³ + θ2·x²`` — row 9 of Table I."""

    name = "cubic_quadratic"

    def transform(self, x, z, eps):
        fx = float(x)
        sq = fx * fx
        return fx, (z - eps) / sq, (z + eps) / sq

    def params_from_line(self, m, b):
        return (m, b)

    def evaluate(self, params, xs):
        t1, t2 = params
        return (t1 * xs + t2) * xs * xs



    def evaluate_at(self, params, x):
        return (params[0] * x + params[1]) * x * x
# ---------------------------------------------------------------------------
# Three-parameter models, anchored through the fragment's first point (§III-A)
# ---------------------------------------------------------------------------


class AnchoredQuadraticModel(Model):
    """``f(x) = θ1·x² + θ2·x + θ3`` with ``f(x_i) = z_i`` fixed (§III-A).

    Forcing the curve through the fragment's first data point eliminates the
    third free parameter: the paper's derivation gives ``t_k = x_k + x_i`` and
    bounds ``(z_k - z_i ∓ ε)/(x_k - x_i)``.  ``θ3`` is derived and stored.
    """

    name = "anchored_quadratic"
    n_params = 3

    def transform(self, x, z, eps):  # pragma: no cover - anchored path used
        raise NotImplementedError("anchored models use transform_anchored")

    def transform_anchored(self, x, z, eps, anchor_x, anchor_z):
        dx = float(x) - float(anchor_x)
        return (
            float(x) + float(anchor_x),
            (z - anchor_z - eps) / dx,
            (z - anchor_z + eps) / dx,
        )

    def params_from_line(self, m, b):  # pragma: no cover
        raise NotImplementedError("anchored models use params_from_line_anchored")

    def params_from_line_anchored(self, m, b, anchor_x, anchor_z):
        return (m, b, anchor_z - m * anchor_x * anchor_x - b * anchor_x)

    def params_from_anchor_only(self, anchor_x, anchor_z):
        return (0.0, 0.0, anchor_z)

    def evaluate(self, params, xs):
        t1, t2, t3 = params
        return (t1 * xs + t2) * xs + t3


    def evaluate_at(self, params, x):
        return (params[0] * x + params[1]) * x + params[2]
    def new_fitter(
        self, anchor_x: int | None = None, anchor_z: float | None = None
    ) -> _AnchoredFitter:
        if anchor_x is None or anchor_z is None:
            raise ValueError("anchored models need the fragment's first data point")
        return _AnchoredFitter(self, anchor_x, anchor_z)


class GaussianModel(AnchoredQuadraticModel):
    """``f(x) = e^(θ1·x² + θ2·x + θ3)`` with ``f(x_i) = z_i`` fixed (§III-A)."""

    name = "gaussian"
    n_params = 3

    def transform_anchored(self, x, z, eps, anchor_x, anchor_z):
        dx = float(x) - float(anchor_x)
        log_anchor = math.log(max(anchor_z, _LOG_FLOOR))
        lo = math.log(max(z - eps, _LOG_FLOOR)) - log_anchor
        hi = math.log(max(z + eps, _LOG_FLOOR)) - log_anchor
        return float(x) + float(anchor_x), lo / dx, hi / dx

    def params_from_line_anchored(self, m, b, anchor_x, anchor_z):
        return (
            m,
            b,
            math.log(max(anchor_z, _LOG_FLOOR)) - m * anchor_x * anchor_x - b * anchor_x,
        )

    def params_from_anchor_only(self, anchor_x, anchor_z):
        return (0.0, 0.0, math.log(max(anchor_z, _LOG_FLOOR)))

    def evaluate(self, params, xs):
        t1, t2, t3 = params
        return np.exp(np.minimum((t1 * xs + t2) * xs + t3, 700.0))



    def evaluate_at(self, params, x):
        return math.exp(min((params[0] * x + params[1]) * x + params[2], 700.0))
# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

MODEL_REGISTRY: dict[str, Model] = {
    model.name: model
    for model in (
        LinearModel(),
        ExponentialModel(),
        PowerModel(),
        LogarithmicModel(),
        RadicalModel(),
        QuadraticModel(),
        QuadraticLinearModel(),
        CubicLinearModel(),
        CubicQuadraticModel(),
        AnchoredQuadraticModel(),
        GaussianModel(),
    )
}

#: the four kinds NeaTS uses in the paper's experiments (§IV-A)
DEFAULT_MODELS: tuple[str, ...] = ("linear", "exponential", "quadratic", "radical")

#: every implemented kind
ALL_MODELS: tuple[str, ...] = tuple(MODEL_REGISTRY)


def get_model(name: str) -> Model:
    """Look up a model by name, with a helpful error message."""
    try:
        return MODEL_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(MODEL_REGISTRY))
        raise ValueError(f"unknown model {name!r}; known models: {known}") from None


def make_approximation(
    z: np.ndarray, start: int, model: Model, eps: float, max_end: int | None = None
) -> FragmentFit:
    """MAKE-APPROXIMATION(T, k, f, ε) — the longest ε-approximable fragment.

    Runs the algorithm of Theorem 1 from position ``start`` (0-based) over the
    shifted values ``z`` and returns the longest fragment ``[start, end)``
    admitting an ε-approximation of kind ``model``, together with feasible
    parameters.  The fragment always has length at least 1.
    """
    n = len(z) if max_end is None else min(max_end, len(z))
    if not 0 <= start < n:
        raise ValueError(f"start {start} out of range [0, {n})")
    anchor_needed = model.n_params == 3
    if anchor_needed:
        fitter = model.new_fitter(start + 1, float(z[start]))
        k = start + 1
    else:
        fitter = model.new_fitter()
        k = start
    while k < n:
        if not fitter.add(k + 1, float(z[k]), eps):
            break
        k += 1
    if not anchor_needed and fitter.n == 0:
        # Unreachable after the global positivity shift (every transform is
        # finite for z - ε >= 1 and local x >= 1); only pathological float
        # input (inf/nan values) lands here.
        raise RuntimeError(
            f"model {model.name!r} cannot represent the point at index {start}; "
            "values must be finite and satisfy the positivity shift"
        )
    return FragmentFit(start, k, fitter.params())
