"""O'Rourke's online algorithm for fitting a line through vertical ranges.

This module is the computational engine behind Theorem 1 of the paper.  After
the per-model change of variables (Table I), *every* supported function kind
reduces to the same geometric problem: given points arriving online with
strictly increasing abscissae ``t_k`` and vertical feasibility ranges
``[lo_k, hi_k]``, maintain whether a single line ``b(t) = m*t + q`` exists
with ``lo_k <= m*t_k + q <= hi_k`` for all points seen so far, and report one
such ``(m, q)`` when asked.

The feasible set of ``(m, q)`` pairs is a convex polygon; O'Rourke [36] showed
it can be maintained in amortised O(1) per point because each new point only
clips the polygon with two half-planes whose slopes are more extreme than all
previous ones.  We implement the equivalent *primal* formulation popularised
by the PGM-index: two convex hulls (of the lower and upper range endpoints)
plus the current extreme-slope supporting pairs, stored as the four corners of
the feasible "rectangle".

All arithmetic is float64.  The caller (``repro.core.models``) is responsible
for providing transformed coordinates; the encoder re-validates residuals, so
a borderline accept/reject here affects only optimality by a hair, never
correctness of the compressed output.
"""

from __future__ import annotations

__all__ = ["RangeLineFitter"]


def _cross(ox: float, oy: float, ax: float, ay: float, bx: float, by: float) -> float:
    """Z component of (A - O) x (B - O)."""
    return (ax - ox) * (by - oy) - (ay - oy) * (bx - ox)


def _slope_lt(ax: float, ay: float, bx: float, by: float) -> bool:
    """Compare slopes of two vectors with positive dx: a.dy/a.dx < b.dy/b.dx."""
    return ay * bx < by * ax


class RangeLineFitter:
    """Incrementally decide whether a line stabs all vertical ranges so far.

    Usage::

        fitter = RangeLineFitter()
        while fitter.add(t, lo, hi):
            ...                       # range accepted, extend the fragment
        m, q = fitter.line()          # a feasible line for the accepted ranges

    ``add`` returns ``False`` (and leaves the state untouched) when no line
    can stab the new range together with all previously accepted ones; the
    caller then closes the current fragment and starts a new fitter.
    """

    __slots__ = (
        "_upper",
        "_lower",
        "_upper_start",
        "_lower_start",
        "_rect",
        "_count",
        "_last_t",
    )

    def __init__(self) -> None:
        self._upper: list[tuple[float, float]] = []
        self._lower: list[tuple[float, float]] = []
        self._upper_start = 0
        self._lower_start = 0
        # Corners of the feasible region in primal space:
        # rect[0]-rect[2] realise the minimum slope, rect[1]-rect[3] the max.
        self._rect: list[tuple[float, float]] = [(0.0, 0.0)] * 4
        self._count = 0
        self._last_t = float("-inf")

    @property
    def count(self) -> int:
        """Number of ranges accepted so far."""
        return self._count

    def add(self, t: float, lo: float, hi: float) -> bool:
        """Try to extend the feasible set with the range ``[lo, hi]`` at ``t``.

        Returns ``True`` if a stabbing line still exists (range accepted).
        ``t`` must be strictly larger than every previously accepted abscissa.
        """
        if lo > hi:
            raise ValueError(f"empty range [{lo}, {hi}] at t={t}")
        if self._count and t <= self._last_t:
            raise ValueError("abscissae must be strictly increasing")

        p_hi = (t, hi)
        p_lo = (t, lo)

        if self._count == 0:
            self._rect[0] = p_hi
            self._rect[1] = p_lo
            self._upper = [p_hi]
            self._lower = [p_lo]
            self._upper_start = self._lower_start = 0
            self._count = 1
            self._last_t = t
            return True

        if self._count == 1:
            self._rect[2] = p_lo
            self._rect[3] = p_hi
            self._upper.append(p_hi)
            self._lower.append(p_lo)
            self._count = 2
            self._last_t = t
            return True

        r0, r1, r2, r3 = self._rect
        slope1 = (r2[0] - r0[0], r2[1] - r0[1])  # min slope
        slope2 = (r3[0] - r1[0], r3[1] - r1[1])  # max slope

        # The new upper endpoint must lie above the min-slope line; the new
        # lower endpoint must lie below the max-slope line.  Otherwise the
        # feasible polygon would become empty.
        outside_low = _slope_lt(p_hi[0] - r2[0], p_hi[1] - r2[1], *slope1)
        outside_high = _slope_lt(*slope2, p_lo[0] - r3[0], p_lo[1] - r3[1])
        if outside_low or outside_high:
            return False

        # Does the upper endpoint sharpen the max slope?
        if _slope_lt(p_hi[0] - r1[0], p_hi[1] - r1[1], *slope2):
            # Find the lower-hull point that, paired with p_hi, minimises the
            # slope; this becomes the new max-slope support.
            lo_hull = self._lower
            i = self._lower_start
            best = i
            bx = lo_hull[i][0] - p_hi[0]
            by = lo_hull[i][1] - p_hi[1]
            for j in range(i + 1, len(lo_hull)):
                cx = lo_hull[j][0] - p_hi[0]
                cy = lo_hull[j][1] - p_hi[1]
                if _slope_lt(bx, by, cx, cy):
                    break
                bx, by = cx, cy
                best = j
            self._rect[1] = lo_hull[best]
            self._rect[3] = p_hi
            self._lower_start = best
            # Maintain the upper hull with p_hi.
            hull = self._upper
            end = len(hull)
            while (
                end >= self._upper_start + 2
                and _cross(*hull[end - 2], *hull[end - 1], *p_hi) <= 0
            ):
                end -= 1
            del hull[end:]
            hull.append(p_hi)

        # Does the lower endpoint sharpen the min slope?
        r0, r1, r2, r3 = self._rect
        slope1 = (r2[0] - r0[0], r2[1] - r0[1])
        if _slope_lt(*slope1, p_lo[0] - r0[0], p_lo[1] - r0[1]):
            up_hull = self._upper
            i = self._upper_start
            best = i
            bx = up_hull[i][0] - p_lo[0]
            by = up_hull[i][1] - p_lo[1]
            for j in range(i + 1, len(up_hull)):
                cx = up_hull[j][0] - p_lo[0]
                cy = up_hull[j][1] - p_lo[1]
                if _slope_lt(cx, cy, bx, by):
                    break
                bx, by = cx, cy
                best = j
            self._rect[0] = up_hull[best]
            self._rect[2] = p_lo
            self._upper_start = best
            hull = self._lower
            end = len(hull)
            while (
                end >= self._lower_start + 2
                and _cross(*hull[end - 2], *hull[end - 1], *p_lo) >= 0
            ):
                end -= 1
            del hull[end:]
            hull.append(p_lo)

        self._count += 1
        self._last_t = t
        return True

    def line(self) -> tuple[float, float]:
        """Return a feasible ``(slope, intercept)`` for all accepted ranges.

        With two or more points, we return the line through the intersection
        of the two extreme-slope supports with the average extreme slope: a
        point strictly inside the feasible polygon, which maximises the float
        safety margin on both sides.
        """
        if self._count == 0:
            raise ValueError("no ranges accepted")
        if self._count == 1:
            t, hi = self._rect[0]
            _, lo = self._rect[1]
            return 0.0, (hi + lo) / 2.0

        r0, r1, r2, r3 = self._rect
        min_dx = r2[0] - r0[0]
        min_dy = r2[1] - r0[1]
        max_dx = r3[0] - r1[0]
        max_dy = r3[1] - r1[1]
        # Degenerate supports: at extreme value scales float rounding can
        # collapse a diagonal onto a single abscissa (dx == 0).  Fall back to
        # the other support's slope anchored at the pinch midpoint — the
        # encoder re-measures residuals, so a slightly suboptimal line only
        # costs bits, never correctness.
        if min_dx == 0.0 and max_dx == 0.0:
            return 0.0, (r0[1] + r2[1]) / 2.0
        if min_dx == 0.0:
            slope = max_dy / max_dx
            return slope, (r0[1] + r2[1]) / 2.0 - slope * r0[0]
        if max_dx == 0.0:
            slope = min_dy / min_dx
            return slope, (r1[1] + r3[1]) / 2.0 - slope * r1[0]
        min_slope = min_dy / min_dx
        max_slope = max_dy / max_dx
        slope = (min_slope + max_slope) / 2.0

        # Intersection of the two diagonal support lines.
        denom = min_dx * max_dy - min_dy * max_dx
        if abs(denom) < 1e-300:
            # Parallel supports: the polygon is (numerically) a segment; any
            # support point works.
            px, py = r0
        else:
            s = ((r1[0] - r0[0]) * max_dy - (r1[1] - r0[1]) * max_dx) / denom
            px = r0[0] + s * min_dx
            py = r0[1] + s * min_dy
        return slope, py - slope * px

    def slope_range(self) -> tuple[float, float]:
        """The current feasible slope interval ``[min_slope, max_slope]``."""
        if self._count == 0:
            raise ValueError("no ranges accepted")
        if self._count == 1:
            return float("-inf"), float("inf")
        r0, r1, r2, r3 = self._rect
        return (
            (r2[1] - r0[1]) / (r2[0] - r0[0]),
            (r3[1] - r1[1]) / (r3[0] - r1[0]),
        )
