"""Command-line interface: compress, decompress, and inspect time series.

Usage::

    python -m repro codecs     --json
    python -m repro compress   input.csv  output.rpac --digits 2
    python -m repro compress   input.csv  output.rpac --codec gorilla
    python -m repro compress   input.csv  output.rpac --codec pla --eps 0.5
    python -m repro decompress output.rpac restored.csv
    python -m repro info       output.rpac
    python -m repro access     output.rpac 12345 --lazy
    python -m repro append     stream.rpal batch1.csv --codec gorilla
    python -m repro append     stream.rpal batch2.csv --seal
    python -m repro generate   IT out.csv --n 10000

    python -m repro db init    dbdir --hot-codec gorilla --cold-codec neats
    python -m repro db ingest  dbdir a.csv b.csv --workers 4
    python -m repro db query   dbdir a --at 123 456
    python -m repro db compact dbdir
    python -m repro db info    dbdir

    python -m repro fsck output.rpac stream.rpal --deep --json
    python -m repro fsck dbdir
    python -m repro lint --rules
    python -m repro lint src/repro --baseline .repro-lint.json

``fsck`` structurally verifies what the system persisted — archive
headers, frame lengths, per-frame crc32s, cumulative-count monotonicity,
torn tails, and (for a SeriesDB directory) manifest <-> shard <-> WAL
consistency — without decoding values unless ``--deep``.  ``lint`` runs
the repo's AST-based invariant checks (codec-protocol conformance,
binary-format/durability/lock discipline, pickle/eval bans) against any
source tree; the committed baseline file grandfathers existing debt so
only *new* violations fail.  Exit codes for both: 0 = clean, 1 =
violations/defects, 2 = target unusable.

The ``db`` family drives a :class:`repro.store.SeriesDB`: a directory of
per-series tiered-store shards with a JSON manifest, batch-ingested
through a process pool and recompressed in the background by ``compact``.

Any codec from ``repro.codecs.available_codecs()`` can write an archive
(``codecs`` lists them with their capability flags); the self-describing
container records which one, so ``decompress``, ``info`` and ``access``
need no codec flag.  Lossy codecs (``neats_l``, ``pla``, ``aa``) require an
explicit error bound: ``--eps`` is in *original value units* — ``--eps 0.5``
guarantees every value within ±0.5, whatever the ``--digits`` scaling (the
codec operates on scaled integers, so the bound is scaled internally).  Any
other codec constructor param rides along via repeated ``--codec-param
k=v`` (values parsed as JSON when possible).  ``--lazy`` (on ``info``,
``access``, and ``db query``) memory-maps files and parses them zero-copy
instead of reading them up front — the cold-query fast path.  Archives
produced by older versions (magic ``NTSF0001``) remain readable.

``append`` drives the streaming ingest path: it creates an *appendable*
archive (magic ``RPAL0001``) when missing and otherwise appends one
fsync'd record holding only the new values — O(new values) however large
the file.  ``info``, ``access``, and ``decompress`` read appendable
archives transparently (the records form one logical series), and
``append --seal`` compacts the record sequence into a one-shot
``RPAC0001`` archive.

CSV files hold one fixed-precision decimal per line (the paper's dataset
interchange format); ``--digits`` controls the decimal scaling of §II.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from .codecs import available_codecs, codec_spec, compress, open_archive, save
from .data import DATASETS, load, read_csv, write_csv

__all__ = ["main"]

_NEATS_FAMILY = ("neats", "leats", "sneats")


def _parse_param_pairs(pairs: list[str] | None) -> dict:
    """Parse repeated ``--codec-param k=v`` flags; values decode as JSON."""
    params: dict = {}
    for pair in pairs or ():
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise SystemExit(f"--codec-param expects KEY=VALUE, got {pair!r}")
        try:
            params[key] = json.loads(raw)
        except json.JSONDecodeError:
            params[key] = raw  # bare strings stay strings
    return params


def _codec_params(args) -> dict:
    """Translate CLI flags into codec constructor params."""
    params: dict = _parse_param_pairs(getattr(args, "codec_param", None))
    if args.codec in _NEATS_FAMILY:
        if args.models:
            params["models"] = tuple(args.models.split(","))
        if args.rank_mode != "ef":
            params["rank_mode"] = args.rank_mode
    elif args.models or args.rank_mode != "ef":
        print(
            f"warning: --models/--rank-mode only apply to the NeaTS family, "
            f"ignored for codec {args.codec!r}",
            file=sys.stderr,
        )
    spec = codec_spec(args.codec)
    if args.eps is not None:
        if not spec.lossy:
            print(
                f"warning: --eps only applies to lossy codecs, ignored for "
                f"codec {args.codec!r}",
                file=sys.stderr,
            )
        else:
            # The bound is given in original value units; codecs operate on
            # the scaled integers, so apply the decimal scaling of §II.
            params["eps"] = args.eps * 10**args.digits
    if spec.lossy and "eps" not in params:
        raise SystemExit(
            f"codec {args.codec!r} is lossy and requires an error bound: "
            "pass --eps (in value units)"
        )
    if spec.needs_digits:
        params["digits"] = args.digits
    return params


def _cmd_compress(args) -> int:
    values = read_csv(args.input, args.digits)
    params = _codec_params(args)
    t0 = time.perf_counter()
    compressed = compress(values, codec=args.codec, **params)
    elapsed = time.perf_counter() - t0
    save(Path(args.output), compressed, digits=args.digits)
    raw = 8 * len(values)
    size = Path(args.output).stat().st_size
    line = (f"{len(values):,} values -> {size:,} bytes "
            f"({100 * size / raw:.2f}% of raw) in {elapsed:.2f}s "
            f"[{args.codec}]")
    if hasattr(compressed, "num_fragments"):
        line += f", {compressed.num_fragments} fragments"
    elif hasattr(compressed, "num_segments"):
        line += f", {compressed.num_segments} segments"
    if codec_spec(args.codec).lossy:
        err = compressed.max_error(values) / 10**args.digits
        line += f", measured max error {err:.{args.digits}f}"
    print(line)
    return 0


def _cmd_codecs(args) -> int:
    """List every registered codec with its capability flags."""
    rows = []
    for cid in available_codecs():
        spec = codec_spec(cid)
        rows.append({
            "id": cid,
            "name": spec.table_name,
            "lossy": spec.lossy,
            "native_random_access": spec.native_random_access,
            "needs_digits": spec.needs_digits,
            "native_loader": spec.load_native is not None,
            "required_params": list(spec.required_params),
            "description": spec.description,
        })
    if args.json:
        print(json.dumps(rows, indent=2))
        return 0
    flags = ("lossy", "native_random_access", "needs_digits", "native_loader")
    header = (f"{'id':<10} {'lossy':<6} {'random':<7} {'digits':<7} "
              f"{'native':<7} {'params':<8} description")
    print(header)
    print("-" * len(header))
    for row in rows:
        marks = ["yes" if row[f] else "-" for f in flags]
        required = ",".join(row["required_params"]) or "-"
        print(f"{row['id']:<10} {marks[0]:<6} {marks[1]:<7} {marks[2]:<7} "
              f"{marks[3]:<7} {required:<8} {row['description']}")
    return 0


def _cmd_decompress(args) -> int:
    with open_archive(Path(args.input)) as archive:
        values = archive.decompress()
        digits = archive.digits
    write_csv(args.output, values, digits)
    print(f"restored {len(values):,} values to {args.output}")
    return 0


def _cmd_info(args) -> int:
    with open_archive(Path(args.input), lazy=args.lazy) as archive:
        compressed = archive.compressed
        print(f"codec:         {archive.codec_id}")
        if archive.params:
            shown = ", ".join(
                f"{k}={v}" for k, v in sorted(archive.params.items())
            )
            print(f"codec params:  {shown}")
        runs = getattr(compressed, "num_runs", None)
        if runs is not None:
            print(f"append runs:   {runs} (appendable archive)")
            if compressed.truncated_bytes:
                print(f"torn tail:     {compressed.truncated_bytes:,} bytes "
                      "of a crash-truncated record ignored")
        print(f"values:        {len(archive):,}")
        print(f"decimal digits: {archive.digits}")
        if archive.codec_id and codec_spec(archive.codec_id).lossy:
            eps = archive.params.get("eps")
            shown = "?" if eps is None else f"{eps / 10**archive.digits:g}"
            print(f"lossy:         yes (guaranteed max error {shown})")
        if len(archive):
            print(f"size:          {archive.size_bytes():,} bytes "
                  f"({100 * archive.compression_ratio():.2f}% of raw)")
        else:
            print("size:          0 bytes (no records appended yet)")
        storage = getattr(compressed, "storage", None)
        if storage is not None:
            print(f"fragments:     {storage.m:,}")
            print(f"model kinds:   {', '.join(storage.model_names)}")
            print(f"rank mode:     {storage.rank_mode}")
            widths = storage._widths_list
            print(f"correction widths: min {min(widths)} / max {max(widths)} "
                  "bits")
    return 0


def _cmd_access(args) -> int:
    with open_archive(Path(args.input), lazy=args.lazy) as archive:
        n = len(archive)
        for k in args.positions:
            if not 0 <= k < n:
                print(f"position {k}: out of range [0, {n})", file=sys.stderr)
                return 1
            value = archive.access(k)
            print(f"[{k}] {value / 10**archive.digits:.{archive.digits}f}")
    return 0


def _cmd_append(args) -> int:
    from .codecs.container import append_open

    params = _parse_param_pairs(args.codec_param)
    path = Path(args.archive)
    creating = not path.exists()
    try:
        archive = append_open(path, codec=args.codec, digits=args.digits,
                              **params)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    values = read_csv(args.input, archive.digits)
    t0 = time.perf_counter()
    total = archive.append(values)
    elapsed = time.perf_counter() - t0
    verb = "created" if creating else "appended to"
    print(f"{verb} {path}: +{len(values):,} values -> {total:,} total "
          f"in {archive.num_records} record(s) [{archive.codec_id}] "
          f"({1e3 * elapsed:.1f} ms)")
    if args.seal:
        target = archive.seal()
        print(f"sealed {target} into a one-shot archive "
              f"({target.stat().st_size:,} bytes)")
    return 0


def _cmd_generate(args) -> int:
    values = load(args.dataset, n=args.n)
    digits = DATASETS[args.dataset].digits
    write_csv(args.output, values, digits)
    print(f"wrote {len(values):,} values of {args.dataset} "
          f"({digits} digits) to {args.output}")
    return 0


# -- static analysis & integrity ----------------------------------------------


def _cmd_lint(args) -> int:
    from .analysis import RULE_CATALOGUE, Baseline, run_lint
    from .analysis.rules import RULE_EXAMPLES

    if args.explain:
        rule_id = args.explain.upper()
        if rule_id not in RULE_CATALOGUE:
            known = ", ".join(sorted(RULE_CATALOGUE))
            print(f"unknown rule {args.explain!r}; known: {known}",
                  file=sys.stderr)
            return 2
        title, hint = RULE_CATALOGUE[rule_id]
        print(f"{rule_id}: {title}")
        print(f"fix: {hint}")
        example = RULE_EXAMPLES.get(rule_id)
        if example:
            print("\nminimal failing example:\n")
            for line in example.splitlines():
                print(f"    {line}")
        return 0
    if args.rules:
        for rule_id, (title, hint) in sorted(RULE_CATALOGUE.items()):
            print(f"{rule_id}  {title}")
            print(f"        fix: {hint}")
        return 0
    baseline_path = Path(args.baseline)
    try:
        baseline = Baseline.load(baseline_path)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    findings = run_lint(
        args.paths or None, baseline=baseline, dataflow=args.dataflow,
    )
    if args.update_baseline:
        Baseline.from_findings(findings).save(baseline_path)
        print(f"baselined {len(findings)} finding(s) into {baseline_path}")
        return 0
    fresh = [f for f in findings if not f.baselined]
    if args.json:
        print(json.dumps([
            {"rule": f.rule, "file": f.file, "line": f.line,
             "message": f.message, "hint": f.hint, "baselined": f.baselined}
            for f in findings
        ], indent=2))
    else:
        for finding in findings:
            print(finding.render())
        grandfathered = len(findings) - len(fresh)
        print(f"{len(fresh)} new finding(s), {grandfathered} baselined")
    return 1 if fresh else 0


def _cmd_bench(args) -> int:
    from .bench.runner import run_bench

    written = run_bench(args.out, quick=args.quick, n=args.n, log=print)
    for path in written:
        print(f"wrote {path}")
    return 0


def _cmd_fsck(args) -> int:
    from .analysis import fsck_path

    reports = [fsck_path(target, deep=args.deep) for target in args.targets]
    if args.json:
        payload = [r.to_json() for r in reports]
        print(json.dumps(payload[0] if len(payload) == 1 else payload,
                         indent=2))
    else:
        for report in reports:
            print(report.render())
    return max(report.exit_code for report in reports)


# -- the db subcommand family -------------------------------------------------


def _cmd_db_init(args) -> int:
    from .store import PartitionedSeriesDB, SeriesDB

    root = Path(args.root)
    if (root / "MANIFEST.json").exists():
        print(f"{root} already holds a SeriesDB", file=sys.stderr)
        return 1
    # --eps / --codec-param configure the cold tier: that is where a strong
    # (possibly lossy, with --allow-lossy) codec runs during compaction.
    cold_params = _parse_param_pairs(args.codec_param)
    if args.eps is not None:
        cold_params["eps"] = args.eps
    if codec_spec(args.cold_codec).lossy and "eps" not in cold_params:
        print(f"cold codec {args.cold_codec!r} is lossy and requires an "
              "error bound: pass --eps (in stored value units)",
              file=sys.stderr)
        return 1
    config = dict(
        seal_threshold=args.seal_threshold,
        hot_codec=args.hot_codec,
        cold_codec=args.cold_codec,
        cold_params=cold_params,
        allow_lossy=args.allow_lossy,
    )
    try:
        if args.partitions:
            # Partitions default to group commit (one fsync per partition
            # per batch); single-dir keeps per-series logs unless asked.
            group = True if args.group_commit is None else args.group_commit
            db = PartitionedSeriesDB(
                root, partitions=args.partitions, group_commit=group, **config
            )
            kind = (f"partitioned SeriesDB ({args.partitions} partitions, "
                    f"group_commit={'on' if group else 'off'})")
        else:
            db = SeriesDB(root, group_commit=bool(args.group_commit), **config)
            kind = "SeriesDB"
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    print(f"initialised {kind} at {db.root} "
          f"(hot={args.hot_codec}, cold={args.cold_codec}, "
          f"seal_threshold={args.seal_threshold})")
    return 0


def _cmd_db_migrate(args) -> int:
    from .store import PartitionedSeriesDB

    try:
        db = PartitionedSeriesDB.migrate(
            args.root,
            partitions=args.partitions,
            group_commit=True if args.group_commit is None else args.group_commit,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    with db:
        n = len(db)
    print(f"migrated {args.root} to {args.partitions} partitions "
          f"({n} series redistributed)")
    return 0


def _cmd_db_ingest(args) -> int:
    from .store import open_store

    if args.series:
        names = args.series.split(",")
        if len(names) != len(args.inputs):
            print(f"--series names {len(names)} series, "
                  f"but {len(args.inputs)} files given", file=sys.stderr)
            return 1
    else:
        names = [Path(p).stem for p in args.inputs]
    dupes = sorted({n for n in names if names.count(n) > 1})
    if dupes:
        print(f"duplicate series ids {', '.join(dupes)}: files with the same "
              "stem need explicit --series names", file=sys.stderr)
        return 1
    series_map = {
        name: read_csv(path, args.digits)
        for name, path in zip(names, args.inputs)
    }
    t0 = time.perf_counter()
    with open_store(args.root) as db:
        counts = db.ingest_many(
            series_map, workers=args.workers, digits=args.digits,
        )
        db.flush()
    elapsed = time.perf_counter() - t0
    total = sum(len(v) for v in series_map.values())
    for name, count in counts.items():
        print(f"{name}: +{len(series_map[name]):,} values -> {count:,} total")
    print(f"ingested {total:,} values across {len(series_map)} series "
          f"in {elapsed:.2f}s")
    return 0


def _cmd_db_query(args) -> int:
    from .store import open_store

    with open_store(args.root, lazy=args.lazy) as db:
        if args.sid not in db:
            known = ", ".join(db.series_ids()) or "(none)"
            print(f"unknown series {args.sid!r}; known: {known}",
                  file=sys.stderr)
            return 1
        # The manifest records each series' decimal scaling at ingest time,
        # so queries need no flag; --digits still overrides for display.
        digits = db.digits(args.sid) if args.digits is None else args.digits
        scale = 10**digits
        n = db.count(args.sid)
        if args.at is not None:
            for k in args.at:
                if not 0 <= k < n:
                    print(f"position {k}: out of range [0, {n})",
                          file=sys.stderr)
                    return 1
                print(f"{args.sid}[{k}] "
                      f"{db.access(args.sid, k) / scale:.{digits}f}")
        elif args.range is not None:
            lo, hi = args.range
            if not 0 <= lo <= hi <= n:
                print(f"range [{lo}, {hi}): out of range [0, {n})",
                      file=sys.stderr)
                return 1
            for v in db.range(args.sid, lo, hi):
                print(f"{v / scale:.{digits}f}")
        else:
            print(f"{args.sid}: {n:,} values")
    return 0


def _cmd_db_compact(args) -> int:
    from .store import PartitionedSeriesDB, open_store

    with open_store(args.root) as db:
        if isinstance(db, PartitionedSeriesDB):
            compacted = db.compact(args.hot_threshold, workers=args.workers)
        else:
            compacted = db.compact(hot_threshold=args.hot_threshold)
    if compacted:
        print(f"compacted {len(compacted)} shard(s): {', '.join(compacted)}")
    else:
        print("nothing to compact")
    return 0


def _cmd_db_info(args) -> int:
    from .store import open_store

    with open_store(args.root) as db:
        info = db.info()
    print(f"root:           {info['root']}")
    print(f"hot codec:      {info['hot_codec']}")
    print(f"cold codec:     {info['cold_codec']}")
    print(f"seal threshold: {info['seal_threshold']:,}")
    if "partitions" in info:
        print(f"partitions:     {info['partitions']} "
              f"(placement {info['placement']}, group_commit "
              f"{'on' if info.get('group_commit') else 'off'})")
    print(f"series:         {len(info['series'])}")
    for sid, entry in info["series"].items():
        where = entry["shard"]
        if "partition" in entry:
            where = f"p{entry['partition']:04d}/{where}"
        print(f"  {sid}: {entry['count']:,} values "
              f"(buffer {entry['buffer_values']:,} / hot {entry['hot_values']:,}"
              f" / cold {entry['cold_values']:,}, "
              f"digits {entry.get('digits', 0)}) -> {where}")
    return 0


def _add_db_parsers(sub) -> None:
    db = sub.add_parser("db", help="multi-series shard-per-series store")
    dbsub = db.add_subparsers(dest="db_command", required=True)

    p = dbsub.add_parser("init", help="create an empty SeriesDB directory")
    p.add_argument("root")
    p.add_argument("--seal-threshold", type=int, default=4096,
                   help="values per sealed hot block (default: 4096)")
    p.add_argument("--hot-codec", default="gorilla", choices=available_codecs(),
                   help="ingest-tier codec (default: gorilla; never lossy)")
    p.add_argument("--cold-codec", default="neats", choices=available_codecs(),
                   help="compaction-tier codec (default: neats)")
    p.add_argument("--eps", type=float, default=None,
                   help="cold-tier error bound in stored value units "
                        "(required when --cold-codec is lossy)")
    p.add_argument("--codec-param", action="append", default=None,
                   metavar="KEY=VALUE",
                   help="extra cold-codec constructor param (repeatable; "
                        "values parsed as JSON when possible)")
    p.add_argument("--allow-lossy", action="store_true",
                   help="opt into a lossy cold tier: compacted history "
                        "answers within the codec's eps, not exactly")
    p.add_argument("--partitions", type=int, default=0, metavar="N",
                   help="create a horizontally partitioned store: N "
                        "independent SeriesDB partition directories behind "
                        "one facade (default: 0 = single directory)")
    p.add_argument("--group-commit", action=argparse.BooleanOptionalAction,
                   default=None,
                   help="WAL layout: one shared group log, one fsync per "
                        "ingest batch (default: on for partitioned stores, "
                        "off for single-dir)")
    p.set_defaults(func=_cmd_db_init)

    p = dbsub.add_parser(
        "migrate",
        help="convert a single-dir SeriesDB into a partitioned one, in place",
    )
    p.add_argument("root")
    p.add_argument("--partitions", type=int, default=4, metavar="N",
                   help="partition count (default: 4)")
    p.add_argument("--group-commit", action=argparse.BooleanOptionalAction,
                   default=None,
                   help="group-commit WALs in the partitions (default: on)")
    p.set_defaults(func=_cmd_db_migrate)

    p = dbsub.add_parser("ingest", help="batch-ingest CSV files, one series each")
    p.add_argument("root")
    p.add_argument("inputs", nargs="+", metavar="csv")
    p.add_argument("--series", default=None,
                   help="comma-separated series ids (default: file stems)")
    p.add_argument("--digits", type=int, default=0,
                   help="fractional decimal digits of the input values")
    p.add_argument("--workers", type=int, default=None,
                   help="process-pool size (default: one per core)")
    p.set_defaults(func=_cmd_db_ingest)

    p = dbsub.add_parser("query", help="point/range queries against one series")
    p.add_argument("root")
    p.add_argument("sid", help="series id")
    group = p.add_mutually_exclusive_group()
    group.add_argument("--at", type=int, nargs="+", default=None,
                       help="positions for point queries")
    group.add_argument("--range", type=int, nargs=2, default=None,
                       metavar=("LO", "HI"), help="half-open position range")
    p.add_argument("--digits", type=int, default=None,
                   help="decimal scaling for printed values "
                        "(default: as recorded at ingest)")
    p.add_argument("--lazy", action="store_true",
                   help="mmap shard files and parse them zero-copy")
    p.set_defaults(func=_cmd_db_query)

    p = dbsub.add_parser("compact", help="consolidate hot tiers into cold runs")
    p.add_argument("root")
    p.add_argument("--hot-threshold", type=int, default=0,
                   help="compact shards with more than this many sealed hot "
                        "values (default: 0 = any)")
    p.add_argument("--workers", type=int, default=None,
                   help="concurrent partition compactions on a partitioned "
                        "store (default: one per core; ignored single-dir)")
    p.set_defaults(func=_cmd_db_compact)

    p = dbsub.add_parser("info", help="describe a SeriesDB")
    p.add_argument("root")
    p.set_defaults(func=_cmd_db_info)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="NeaTS time series compression (ICDE 2025 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("codecs", help="list registered codecs and capabilities")
    p.add_argument("--json", action="store_true",
                   help="machine-readable output for tooling")
    p.set_defaults(func=_cmd_codecs)

    p = sub.add_parser("compress", help="CSV -> compressed archive")
    p.add_argument("input")
    p.add_argument("output")
    p.add_argument("--codec", default="neats", choices=available_codecs(),
                   help="codec id from the registry (default: neats)")
    p.add_argument("--digits", type=int, default=0,
                   help="fractional decimal digits of the input values")
    p.add_argument("--eps", type=float, default=None,
                   help="lossy codecs: guaranteed max error, in original "
                        "value units (scaled by --digits internally)")
    p.add_argument("--codec-param", action="append", default=None,
                   metavar="KEY=VALUE",
                   help="extra codec constructor param (repeatable; values "
                        "parsed as JSON when possible)")
    p.add_argument("--models", default=None,
                   help="NeaTS family: comma-separated model kinds "
                        "(default: paper's four)")
    p.add_argument("--rank-mode", choices=("ef", "bitvector"), default="ef",
                   help="NeaTS family: fragment rank structure")
    p.set_defaults(func=_cmd_compress)

    p = sub.add_parser("decompress", help="archive -> CSV")
    p.add_argument("input")
    p.add_argument("output")
    p.set_defaults(func=_cmd_decompress)

    p = sub.add_parser("info", help="describe an archive")
    p.add_argument("input")
    p.add_argument("--lazy", action="store_true",
                   help="mmap the archive instead of reading it eagerly")
    p.set_defaults(func=_cmd_info)

    p = sub.add_parser("access", help="random access into an archive")
    p.add_argument("input")
    p.add_argument("positions", type=int, nargs="+")
    p.add_argument("--lazy", action="store_true",
                   help="mmap the archive; crc is checked on first decode")
    p.set_defaults(func=_cmd_access)

    p = sub.add_parser("append",
                       help="append CSV values to an appendable archive")
    p.add_argument("archive", help="RPAL0001 archive (created when missing)")
    p.add_argument("input")
    p.add_argument("--codec", default=None, choices=available_codecs(),
                   help="codec when creating (default: gorilla); must match "
                        "the recorded codec when appending")
    p.add_argument("--digits", type=int, default=None,
                   help="fractional decimal digits when creating (default: 0; "
                        "appends reuse the recorded scaling)")
    p.add_argument("--codec-param", action="append", default=None,
                   metavar="KEY=VALUE",
                   help="codec constructor params when creating (repeatable; "
                        "values parsed as JSON when possible)")
    p.add_argument("--seal", action="store_true",
                   help="compact the records into a one-shot RPAC archive "
                        "after appending")
    p.set_defaults(func=_cmd_append)

    p = sub.add_parser("generate", help="emit a synthetic dataset as CSV")
    p.add_argument("dataset", choices=list(DATASETS))
    p.add_argument("output")
    p.add_argument("--n", type=int, default=None)
    p.set_defaults(func=_cmd_generate)

    p = sub.add_parser("lint", help="AST-based invariant linter over the repo")
    p.add_argument("paths", nargs="*", metavar="path",
                   help="files or directories to lint (default: the "
                        "installed repro package sources)")
    p.add_argument("--baseline", default=".repro-lint.json",
                   help="baseline file grandfathering existing debt "
                        "(default: .repro-lint.json; missing file = empty)")
    p.add_argument("--update-baseline", action="store_true",
                   help="rewrite the baseline to accept all current findings")
    p.add_argument("--rules", action="store_true",
                   help="print the rule catalogue and exit")
    p.add_argument("--explain", metavar="RULE_ID",
                   help="print one rule's rationale and a minimal failing "
                        "example (e.g. --explain RPR801), then exit")
    p.add_argument("--dataflow", action="store_true",
                   help="also run the CFG-based RPR5xx/6xx/7xx rules "
                        "(buffer lifetime, resource release, lock order)")
    p.add_argument("--json", action="store_true",
                   help="machine-readable findings for tooling")
    p.set_defaults(func=_cmd_lint)

    p = sub.add_parser("bench",
                       help="tracked kernel benchmarks (BENCH_*.json)")
    p.add_argument("--out", default=".",
                   help="directory receiving the BENCH_*.json artefacts "
                        "(default: current directory)")
    p.add_argument("--quick", action="store_true",
                   help="small series / one repeat: the CI smoke "
                        "configuration")
    p.add_argument("--n", type=int, default=None,
                   help="override the benchmark series length")
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser("fsck",
                       help="verify archives / SeriesDB dirs structurally")
    p.add_argument("targets", nargs="+", metavar="target",
                   help="archive files (.rpac/.rpal/legacy) or SeriesDB "
                        "directories")
    p.add_argument("--deep", action="store_true",
                   help="decode every frame and cross-check counts, not "
                        "just headers and checksums")
    p.add_argument("--json", action="store_true",
                   help="machine-readable report for tooling")
    p.set_defaults(func=_cmd_fsck)

    _add_db_parsers(sub)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
