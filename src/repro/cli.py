"""Command-line interface: compress, decompress, and inspect time series.

Usage::

    python -m repro compress   input.csv  output.neats  --digits 2
    python -m repro decompress output.neats restored.csv
    python -m repro info       output.neats
    python -m repro access     output.neats 12345
    python -m repro generate   IT out.csv --n 10000

CSV files hold one fixed-precision decimal per line (the paper's dataset
interchange format); ``--digits`` controls the decimal scaling of §II.
"""

from __future__ import annotations

import argparse
import struct
import sys
import time
from pathlib import Path

import numpy as np

from .core import NeaTS
from .core.storage import NeaTSStorage
from .data import DATASETS, load, read_csv, write_csv

__all__ = ["main"]

_FILE_MAGIC = b"NTSF0001"


def _write_archive(path: Path, storage: NeaTSStorage, digits: int) -> None:
    payload = storage.to_bytes()
    with path.open("wb") as fh:
        fh.write(_FILE_MAGIC)
        fh.write(struct.pack("<i", digits))
        fh.write(payload)


def _read_archive(path: Path) -> tuple[NeaTSStorage, int]:
    data = Path(path).read_bytes()
    if data[:8] != _FILE_MAGIC:
        raise ValueError(f"{path}: not a NeaTS archive")
    (digits,) = struct.unpack_from("<i", data, 8)
    return NeaTSStorage.from_bytes(data[12:]), digits


def _cmd_compress(args) -> int:
    values = read_csv(args.input, args.digits)
    t0 = time.perf_counter()
    compressor = NeaTS(
        models=tuple(args.models.split(",")) if args.models else
        ("linear", "exponential", "quadratic", "radical"),
        rank_mode=args.rank_mode,
    )
    compressed = compressor.compress(values)
    elapsed = time.perf_counter() - t0
    _write_archive(Path(args.output), compressed.storage, args.digits)
    raw = 8 * len(values)
    size = Path(args.output).stat().st_size
    print(f"{len(values):,} values -> {size:,} bytes "
          f"({100 * size / raw:.2f}% of raw) in {elapsed:.2f}s, "
          f"{compressed.num_fragments} fragments")
    return 0


def _cmd_decompress(args) -> int:
    storage, digits = _read_archive(Path(args.input))
    values = storage.decompress()
    write_csv(args.output, values, digits)
    print(f"restored {len(values):,} values to {args.output}")
    return 0


def _cmd_info(args) -> int:
    storage, digits = _read_archive(Path(args.input))
    print(f"values:        {storage.n:,}")
    print(f"fragments:     {storage.m:,}")
    print(f"decimal digits: {digits}")
    print(f"model kinds:   {', '.join(storage.model_names)}")
    print(f"rank mode:     {storage.rank_mode}")
    print(f"size:          {storage.size_bytes():,} bytes "
          f"({100 * storage.size_bits() / (64 * storage.n):.2f}% of raw)")
    widths = storage._widths_list
    print(f"correction widths: min {min(widths)} / max {max(widths)} bits")
    return 0


def _cmd_access(args) -> int:
    storage, digits = _read_archive(Path(args.input))
    for k in args.positions:
        if not 0 <= k < storage.n:
            print(f"position {k}: out of range [0, {storage.n})",
                  file=sys.stderr)
            return 1
        value = storage.access(k)
        print(f"[{k}] {value / 10**digits:.{digits}f}")
    return 0


def _cmd_generate(args) -> int:
    values = load(args.dataset, n=args.n)
    digits = DATASETS[args.dataset].digits
    write_csv(args.output, values, digits)
    print(f"wrote {len(values):,} values of {args.dataset} "
          f"({digits} digits) to {args.output}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="NeaTS time series compression (ICDE 2025 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compress", help="CSV -> NeaTS archive")
    p.add_argument("input")
    p.add_argument("output")
    p.add_argument("--digits", type=int, default=0,
                   help="fractional decimal digits of the input values")
    p.add_argument("--models", default=None,
                   help="comma-separated model kinds (default: paper's four)")
    p.add_argument("--rank-mode", choices=("ef", "bitvector"), default="ef")
    p.set_defaults(func=_cmd_compress)

    p = sub.add_parser("decompress", help="NeaTS archive -> CSV")
    p.add_argument("input")
    p.add_argument("output")
    p.set_defaults(func=_cmd_decompress)

    p = sub.add_parser("info", help="describe a NeaTS archive")
    p.add_argument("input")
    p.set_defaults(func=_cmd_info)

    p = sub.add_parser("access", help="random access into an archive")
    p.add_argument("input")
    p.add_argument("positions", type=int, nargs="+")
    p.set_defaults(func=_cmd_access)

    p = sub.add_parser("generate", help="emit a synthetic dataset as CSV")
    p.add_argument("dataset", choices=list(DATASETS))
    p.add_argument("output")
    p.add_argument("--n", type=int, default=None)
    p.set_defaults(func=_cmd_generate)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
