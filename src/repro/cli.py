"""Command-line interface: compress, decompress, and inspect time series.

Usage::

    python -m repro compress   input.csv  output.rpac --digits 2
    python -m repro compress   input.csv  output.rpac --codec gorilla
    python -m repro decompress output.rpac restored.csv
    python -m repro info       output.rpac
    python -m repro access     output.rpac 12345
    python -m repro generate   IT out.csv --n 10000

Any codec from ``repro.codecs.available_codecs()`` can write an archive; the
self-describing container records which one, so ``decompress``, ``info`` and
``access`` need no codec flag.  Archives produced by older versions (magic
``NTSF0001``) remain readable.

CSV files hold one fixed-precision decimal per line (the paper's dataset
interchange format); ``--digits`` controls the decimal scaling of §II.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from .codecs import available_codecs, codec_spec, compress, open_archive, save
from .data import DATASETS, load, read_csv, write_csv

__all__ = ["main"]

_NEATS_FAMILY = ("neats", "leats", "sneats")


def _codec_params(args) -> dict:
    """Translate CLI flags into codec constructor params."""
    params: dict = {}
    if args.codec in _NEATS_FAMILY:
        if args.models:
            params["models"] = tuple(args.models.split(","))
        if args.rank_mode != "ef":
            params["rank_mode"] = args.rank_mode
    elif args.models or args.rank_mode != "ef":
        print(
            f"warning: --models/--rank-mode only apply to the NeaTS family, "
            f"ignored for codec {args.codec!r}",
            file=sys.stderr,
        )
    if codec_spec(args.codec).needs_digits:
        params["digits"] = args.digits
    return params


def _cmd_compress(args) -> int:
    values = read_csv(args.input, args.digits)
    params = _codec_params(args)
    t0 = time.perf_counter()
    compressed = compress(values, codec=args.codec, **params)
    elapsed = time.perf_counter() - t0
    save(Path(args.output), compressed, digits=args.digits)
    raw = 8 * len(values)
    size = Path(args.output).stat().st_size
    line = (f"{len(values):,} values -> {size:,} bytes "
            f"({100 * size / raw:.2f}% of raw) in {elapsed:.2f}s "
            f"[{args.codec}]")
    if hasattr(compressed, "num_fragments"):
        line += f", {compressed.num_fragments} fragments"
    print(line)
    return 0


def _cmd_decompress(args) -> int:
    archive = open_archive(Path(args.input))
    values = archive.decompress()
    write_csv(args.output, values, archive.digits)
    print(f"restored {len(values):,} values to {args.output}")
    return 0


def _cmd_info(args) -> int:
    archive = open_archive(Path(args.input))
    compressed = archive.compressed
    print(f"codec:         {archive.codec_id}")
    if archive.params:
        shown = ", ".join(f"{k}={v}" for k, v in sorted(archive.params.items()))
        print(f"codec params:  {shown}")
    print(f"values:        {len(archive):,}")
    print(f"decimal digits: {archive.digits}")
    print(f"size:          {archive.size_bytes():,} bytes "
          f"({100 * archive.compression_ratio():.2f}% of raw)")
    storage = getattr(compressed, "storage", None)
    if storage is not None:
        print(f"fragments:     {storage.m:,}")
        print(f"model kinds:   {', '.join(storage.model_names)}")
        print(f"rank mode:     {storage.rank_mode}")
        widths = storage._widths_list
        print(f"correction widths: min {min(widths)} / max {max(widths)} bits")
    return 0


def _cmd_access(args) -> int:
    archive = open_archive(Path(args.input))
    n = len(archive)
    for k in args.positions:
        if not 0 <= k < n:
            print(f"position {k}: out of range [0, {n})", file=sys.stderr)
            return 1
        value = archive.access(k)
        print(f"[{k}] {value / 10**archive.digits:.{archive.digits}f}")
    return 0


def _cmd_generate(args) -> int:
    values = load(args.dataset, n=args.n)
    digits = DATASETS[args.dataset].digits
    write_csv(args.output, values, digits)
    print(f"wrote {len(values):,} values of {args.dataset} "
          f"({digits} digits) to {args.output}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="NeaTS time series compression (ICDE 2025 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compress", help="CSV -> compressed archive")
    p.add_argument("input")
    p.add_argument("output")
    p.add_argument("--codec", default="neats", choices=available_codecs(),
                   help="codec id from the registry (default: neats)")
    p.add_argument("--digits", type=int, default=0,
                   help="fractional decimal digits of the input values")
    p.add_argument("--models", default=None,
                   help="NeaTS family: comma-separated model kinds "
                        "(default: paper's four)")
    p.add_argument("--rank-mode", choices=("ef", "bitvector"), default="ef",
                   help="NeaTS family: fragment rank structure")
    p.set_defaults(func=_cmd_compress)

    p = sub.add_parser("decompress", help="archive -> CSV")
    p.add_argument("input")
    p.add_argument("output")
    p.set_defaults(func=_cmd_decompress)

    p = sub.add_parser("info", help="describe an archive")
    p.add_argument("input")
    p.set_defaults(func=_cmd_info)

    p = sub.add_parser("access", help="random access into an archive")
    p.add_argument("input")
    p.add_argument("positions", type=int, nargs="+")
    p.set_defaults(func=_cmd_access)

    p = sub.add_parser("generate", help="emit a synthetic dataset as CSV")
    p.add_argument("dataset", choices=list(DATASETS))
    p.add_argument("output")
    p.add_argument("--n", type=int, default=None)
    p.set_defaults(func=_cmd_generate)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
