"""Built-in codec line-up: adapters and registry entries for all compressors.

This module is imported lazily by :mod:`repro.codecs.registry` on first
lookup; importing it registers the paper's full Table III line-up (5
general-purpose, 8 special-purpose), the LeaTS/SNeaTS variants, and the
paper's three error-bounded lossy compressors (Table II: NeaTS-L, PLA, AA)
under stable string ids.

The lossy codecs register with ``lossy=True`` and a *required* ``eps``
construction param — an error bound is a contract, so there is no default —
and with native payload loaders only: a lossy frame stores the fitted
segments themselves (decompression is approximate, so the generic values
fallback could never reproduce the object).

The NeaTS family shares one adapter class: since
:class:`~repro.core.compressor.CompressedSeries` implements the
:class:`~repro.baselines.base.Compressed` protocol, adapting NeaTS to the
compressor interface is only a matter of naming and input checking.
"""

from __future__ import annotations

import numpy as np

from ..baselines import (
    AaCompressor,
    AlpCompressor,
    Chimp128Compressor,
    ChimpCompressor,
    DacCompressor,
    GorillaCompressor,
    LeCoCompressor,
    PlaCompressor,
    TSXorCompressor,
)
from ..baselines.aa import AaSeries
from ..baselines.pla import PlaSeries
from ..baselines.alp import _AlpCompressed
from ..baselines.base import LosslessCompressor
from ..baselines.blockwise import BlockwiseCompressed
from ..baselines.chimp import chimp128_decode, chimp_decode
from ..baselines.dac import _DacCompressed
from ..baselines.leco import _LeCoCompressed
from ..baselines.general import (
    BrotliLikeCompressor,
    Lz4LikeCompressor,
    SnappyLikeCompressor,
    XzCompressor,
    ZstdLikeCompressor,
)
from ..baselines.gorilla import _XorBlockCompressed, gorilla_decode
from ..baselines.tsxor import _TSXorCompressed
from ..core.compressor import NeaTS, CompressedSeries
from ..core.lossy import LossySeries, NeaTSLossy
from .registry import codec_spec, register_codec

__all__ = ["NeaTSCompressor", "LeaTSCompressor", "SNeaTSCompressor"]


class NeaTSCompressor(LosslessCompressor):
    """Adapter presenting :class:`~repro.core.NeaTS` as a baseline-style compressor."""

    name = "NeaTS"
    native_random_access = True
    _make = staticmethod(NeaTS)

    def __init__(self, **kwargs) -> None:
        self._inner = self._make(**kwargs)

    def compress(self, values: np.ndarray) -> CompressedSeries:
        return self._inner.compress(self._check_input(values))


class LeaTSCompressor(NeaTSCompressor):
    """LeaTS: the linear-only variant (§IV-C1)."""

    name = "LeaTS"
    _make = staticmethod(NeaTS.linear_only)


class SNeaTSCompressor(NeaTSCompressor):
    """SNeaTS: model selection on the first 10% of the series (§IV-C1)."""

    name = "SNeaTS"
    _make = staticmethod(NeaTS.with_model_selection)


# -- native payload loaders ----------------------------------------------------


def _load_neats(payload: bytes, params: dict) -> CompressedSeries:
    # The storage layout is self-describing; params only matter for compression.
    return CompressedSeries.from_payload(payload)


def _blockwise_loader(codec_id: str):
    def load(payload: bytes, params: dict) -> BlockwiseCompressed:
        compressor = codec_spec(codec_id).factory(**params)
        return BlockwiseCompressed.from_payload(payload, compressor._codec)

    return load


def _xor_loader(decode_fn, family=None):
    def load(payload: bytes, params: dict) -> _XorBlockCompressed:
        return _XorBlockCompressed.from_payload(payload, decode_fn, family)

    return load


def _load_tsxor(payload: bytes, params: dict) -> _TSXorCompressed:
    return _TSXorCompressed.from_payload(payload)


def _load_dac(payload, params: dict) -> _DacCompressed:
    return _DacCompressed.from_payload(payload)


def _load_leco(payload, params: dict) -> _LeCoCompressed:
    return _LeCoCompressed.from_payload(payload)


def _load_alp(payload, params: dict) -> _AlpCompressed:
    return _AlpCompressed.from_payload(payload)


def _lossy_loader(series_cls):
    """A native loader for a lossy series class, cross-checked against the
    frame params (ε and segment count travel in the header, see
    :meth:`~repro.baselines.base.LossyCompressed.to_bytes`)."""

    def load(payload, params: dict):
        series = series_cls.from_payload(payload)
        eps = params.get("eps")
        if eps is not None and float(eps) != series.eps:
            raise ValueError(
                f"corrupt codec frame: header says eps={eps}, "
                f"payload holds eps={series.eps}"
            )
        segments = params.get("segments")
        if segments is not None and int(segments) != series.num_segments:
            raise ValueError(
                f"corrupt codec frame: header says {segments} segments, "
                f"payload holds {series.num_segments}"
            )
        return series

    return load


# -- registrations -------------------------------------------------------------

# The NeaTS family: native random access, persisted via the succinct layout.
register_codec(
    "neats",
    table_name="NeaTS",
    native_random_access=True,
    description="NeaTS: optimal piecewise nonlinear approximation (the paper)",
    load_native=_load_neats,
)(NeaTSCompressor)
register_codec(
    "leats",
    table_name="LeaTS",
    native_random_access=True,
    description="LeaTS: NeaTS restricted to linear functions",
    load_native=_load_neats,
)(LeaTSCompressor)
register_codec(
    "sneats",
    table_name="SNeaTS",
    native_random_access=True,
    description="SNeaTS: NeaTS with sample-based model selection",
    load_native=_load_neats,
)(SNeaTSCompressor)

# Error-bounded lossy compressors (Table II).  Construction requires an
# explicit eps: repro.compress(values, codec="neats_l", eps=0.01).
register_codec(
    "neats_l",
    table_name="NeaTS-L",
    native_random_access=True,
    lossy=True,
    required_params=("eps",),
    description="NeaTS-L: optimal lossy partitioning under an L-inf bound (§III-B)",
    load_native=_lossy_loader(LossySeries),
)(NeaTSLossy)
register_codec(
    "pla",
    table_name="PLA",
    native_random_access=True,
    lossy=True,
    required_params=("eps",),
    description="Optimal piecewise linear approximation (O'Rourke 1981)",
    load_native=_lossy_loader(PlaSeries),
)(PlaCompressor)
register_codec(
    "aa",
    table_name="AA",
    native_random_access=True,
    lossy=True,
    required_params=("eps",),
    description="Adaptive Approximation: greedy anchored fragments (EDBT 2012)",
    load_native=_lossy_loader(AaSeries),
)(AaCompressor)

# Special-purpose baselines.
register_codec(
    "gorilla",
    table_name="Gorilla",
    description="Gorilla XOR compression (Pelkonen et al., VLDB 2015)",
    load_native=_xor_loader(gorilla_decode, "gorilla"),
)(GorillaCompressor)
register_codec(
    "chimp",
    table_name="Chimp",
    description="Chimp XOR compression (Liakos et al., PVLDB 2022)",
    load_native=_xor_loader(chimp_decode, "chimp"),
)(ChimpCompressor)
register_codec(
    "chimp128",
    table_name="Chimp128",
    description="Chimp128: Chimp with a 128-value reference window",
    load_native=_xor_loader(chimp128_decode, "chimp128"),
)(Chimp128Compressor)
register_codec(
    "tsxor",
    table_name="TSXor",
    description="TSXor byte-oriented window XOR (Bruno et al., SPIRE 2021)",
    load_native=_load_tsxor,
)(TSXorCompressor)
register_codec(
    "dac",
    table_name="DAC",
    native_random_access=True,
    description="Directly Addressable Codes (Brisaboa et al., IPM 2013)",
    load_native=_load_dac,
)(DacCompressor)
register_codec(
    "leco",
    table_name="LeCo",
    native_random_access=True,
    description="LeCo: learned serial-correlation compression (SIGMOD 2024)",
    load_native=_load_leco,
)(LeCoCompressor)
register_codec(
    "alp",
    table_name="ALP",
    needs_digits=True,
    description="ALP: adaptive lossless floating-point (Afroozeh et al. 2023)",
    load_native=_load_alp,
)(AlpCompressor)

# General-purpose baselines (block-wise adapter, paper §IV-A2).
register_codec(
    "xz",
    table_name="Xz",
    description="Xz via stdlib lzma, 1000-value blocks",
    load_native=_blockwise_loader("xz"),
)(XzCompressor)
register_codec(
    "brotli",
    table_name="Brotli*",
    description="Brotli stand-in (bz2), 1000-value blocks",
    load_native=_blockwise_loader("brotli"),
)(BrotliLikeCompressor)
register_codec(
    "zstd",
    table_name="Zstd*",
    description="Zstd stand-in (zlib), 1000-value blocks",
    load_native=_blockwise_loader("zstd"),
)(ZstdLikeCompressor)
register_codec(
    "lz4",
    table_name="Lz4*",
    description="Lz4 stand-in (PyLZ greedy parse), 1000-value blocks",
    load_native=_blockwise_loader("lz4"),
)(Lz4LikeCompressor)
register_codec(
    "snappy",
    table_name="Snappy*",
    description="Snappy stand-in (PyLZ accelerated), 1000-value blocks",
    load_native=_blockwise_loader("snappy"),
)(SnappyLikeCompressor)
