"""The on-disk archive container: ``repro.save`` / ``repro.open``.

A repro archive is a self-describing file holding one compressed time series
from *any* registered codec::

    +----------+--------+-------+-----------+--------------------------+
    | RPAC0001 | digits | crc32 | frame len | codec frame (serialize)  |
    +----------+--------+-------+-----------+--------------------------+

The inner frame records the codec id, its parameters, and the payload, so
``repro.open`` needs no out-of-band knowledge; the crc32 catches bit rot and
truncation before any codec parsing runs.  ``digits`` is the dataset's
decimal scaling (§II of the paper), kept at the container level because it
describes the *values*, not the codec.

Archives written by the seed CLI (magic ``NTSF0001``, NeaTS-only) remain
readable: :func:`open_archive` transparently upgrades them to a
:class:`~repro.core.compressor.CompressedSeries` tagged as ``neats``.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..baselines.base import Compressed
from .registry import load_compressed

__all__ = ["ARCHIVE_MAGIC", "LEGACY_MAGIC", "Archive", "save", "open_archive"]

ARCHIVE_MAGIC = b"RPAC0001"
LEGACY_MAGIC = b"NTSF0001"

_HEADER = struct.Struct("<8siIQ")  # magic, digits, crc32(frame), frame length


@dataclass
class Archive:
    """An opened archive: the compressed series plus container metadata.

    Delegates the :class:`Compressed` query protocol, so an archive can be
    used wherever a compressed series can.
    """

    compressed: Compressed
    digits: int = 0
    codec_id: str = ""
    params: dict = field(default_factory=dict)
    path: Path | None = None

    def decompress(self) -> np.ndarray:
        """The original int64 values."""
        return self.compressed.decompress()

    def access(self, k: int) -> int:
        """Random access to position ``k``."""
        return self.compressed.access(k)

    def decompress_range(self, lo: int, hi: int) -> np.ndarray:
        """Values at positions ``[lo, hi)``."""
        return self.compressed.decompress_range(lo, hi)

    def size_bits(self) -> int:
        """Compressed size in bits (of the in-memory representation)."""
        return self.compressed.size_bits()

    def size_bytes(self) -> int:
        """Compressed size in bytes, rounded up."""
        return self.compressed.size_bytes()

    def compression_ratio(self, n: int | None = None) -> float:
        """Compressed bits / uncompressed bits."""
        return self.compressed.compression_ratio(n)

    def values(self) -> np.ndarray:
        """The decoded series as floats, decimal scaling applied."""
        return self.compressed.decompress() / 10.0**self.digits

    def __len__(self) -> int:
        return len(self.compressed)


def save(path, compressed: Compressed, digits: int = 0) -> int:
    """Write ``compressed`` to ``path`` as a self-describing archive.

    Returns the number of bytes written.  Accepts any object implementing
    the :class:`Compressed` serialisation protocol (or an :class:`Archive`,
    unwrapped transparently).
    """
    if isinstance(compressed, Archive):
        digits = digits or compressed.digits
        compressed = compressed.compressed
    frame = compressed.to_bytes()
    blob = _HEADER.pack(ARCHIVE_MAGIC, digits, zlib.crc32(frame), len(frame)) + frame
    Path(path).write_bytes(blob)
    return len(blob)


def open_archive(path) -> Archive:
    """Read an archive written by :func:`save` (or by the legacy seed CLI)."""
    path = Path(path)
    data = path.read_bytes()
    if len(data) >= 8 and data[:8] == LEGACY_MAGIC:
        return _open_legacy(path, data)
    if len(data) < _HEADER.size:
        raise ValueError(f"{path}: not a repro archive (file too short)")
    magic, digits, crc, frame_len = _HEADER.unpack_from(data)
    if magic != ARCHIVE_MAGIC:
        raise ValueError(f"{path}: not a repro archive (bad magic)")
    frame = data[_HEADER.size :]
    if len(frame) != frame_len:
        raise ValueError(
            f"{path}: truncated or padded archive "
            f"(header says {frame_len} frame bytes, found {len(frame)})"
        )
    if zlib.crc32(frame) != crc:
        raise ValueError(f"{path}: archive checksum mismatch (corrupt payload)")
    compressed = load_compressed(frame)
    return Archive(
        compressed=compressed,
        digits=digits,
        codec_id=compressed.codec_id or "",
        params=dict(compressed.codec_params or {}),
        path=path,
    )


def _open_legacy(path: Path, data: bytes) -> Archive:
    """Decode the seed CLI's ``NTSF0001`` format (NeaTS storage + digits)."""
    from ..core.compressor import CompressedSeries
    from ..core.storage import NeaTSStorage

    if len(data) < 12:
        raise ValueError(f"{path}: truncated legacy NeaTS archive")
    (digits,) = struct.unpack_from("<i", data, 8)
    storage = NeaTSStorage.from_bytes(data[12:])
    compressed = CompressedSeries(storage, [], 64 * storage.n)
    compressed.codec_id = "neats"
    compressed.codec_params = {}
    return Archive(
        compressed=compressed, digits=digits, codec_id="neats", params={}, path=path
    )
