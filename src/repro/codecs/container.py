"""The on-disk archive container: ``repro.save`` / ``repro.open``.

A repro archive is a self-describing file holding one compressed time series
from *any* registered codec::

    +----------+--------+-------+-----------+--------------------------+
    | RPAC0001 | digits | crc32 | frame len | codec frame (serialize)  |
    +----------+--------+-------+-----------+--------------------------+

The inner frame records the codec id, its parameters, and the payload, so
``repro.open`` needs no out-of-band knowledge; the crc32 catches bit rot and
truncation before any codec parsing runs.  ``digits`` is the dataset's
decimal scaling (§II of the paper), kept at the container level because it
describes the *values*, not the codec.

Two open modes exist:

* **eager** (the default) — read the whole file, verify the crc, and parse
  the frame up front.  Errors surface at :func:`open_archive` time.
* **lazy** (``open_archive(path, lazy=True)``, i.e. ``repro.open(path,
  lazy=True)``) — ``mmap`` the file and validate only the fixed container
  header.  The compressed object is parsed from a ``memoryview`` over the
  map on first touch (no full-file copy — native payloads adopt the mapped
  bytes directly), and the crc is verified once, on the first operation
  that decodes values (``access``/``decompress``/``decompress_range``/
  ``values``).  The map is held by the archive and by any arrays parsed
  out of it, so it stays valid for the life of those objects; corruption
  therefore surfaces at first decode instead of at open.

``save`` writes atomically (temp file + fsync + rename), matching the
SeriesDB shard-flush discipline: a crash mid-save leaves either the old
archive or the new one, never a truncated file.

Archives written by the seed CLI (magic ``NTSF0001``, NeaTS-only) remain
readable in both modes: the container transparently upgrades them to a
:class:`~repro.core.compressor.CompressedSeries` tagged as ``neats``.
"""

from __future__ import annotations

import mmap
import os
import struct
import zlib
from pathlib import Path

import numpy as np

from ..baselines.base import Compressed
from . import serialize
from .registry import load_compressed

__all__ = [
    "ARCHIVE_MAGIC",
    "LEGACY_MAGIC",
    "Archive",
    "save",
    "open_archive",
    "write_atomic",
    "mmap_view",
]

ARCHIVE_MAGIC = b"RPAC0001"
LEGACY_MAGIC = b"NTSF0001"

_HEADER = struct.Struct("<8siIQ")  # magic, digits, crc32(frame), frame length


def write_atomic(path, blob: bytes) -> None:
    """Durable atomic write: temp file + fsync + rename + directory fsync.

    Readers never see a torn file, and once the rename is visible the data
    blocks are on disk — power loss cannot leave a truncated archive (or a
    manifest pointing at a zero-length shard) behind.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        fh.write(blob)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    try:
        dir_fd = os.open(path.parent, os.O_RDONLY)
    except OSError:  # pragma: no cover - platforms without directory fds
        return
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


def mmap_view(path) -> memoryview | None:
    """A read-only ``memoryview`` over ``path`` via mmap, or ``None``.

    ``None`` means the file cannot be mapped (empty file, mmap-hostile
    filesystem) and the caller should fall back to an eager read.  The view
    keeps the underlying map alive (``view.obj``); the map is unmapped when
    the last reference to the view — or anything parsed out of it — dies.
    """
    try:
        with open(path, "rb") as fh:
            return memoryview(mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ))
    except (ValueError, OSError):
        return None


class Archive:
    """An opened archive: the compressed series plus container metadata.

    Delegates the :class:`Compressed` query protocol, so an archive can be
    used wherever a compressed series can.  Lazily-opened archives (see
    module docstring) materialise :attr:`compressed` on first touch and
    crc-check on first decode; eager archives are fully validated already.
    """

    def __init__(
        self,
        compressed: Compressed | None = None,
        digits: int = 0,
        codec_id: str = "",
        params: dict | None = None,
        path: Path | None = None,
    ) -> None:
        self._compressed = compressed
        self.digits = digits
        self.codec_id = codec_id
        self.params = {} if params is None else params
        self.path = path
        self._values: np.ndarray | None = None

    @property
    def compressed(self) -> Compressed:
        """The compressed series (parsed on first access when lazy)."""
        if self._compressed is None:
            self._compressed = self._materialise()
        return self._compressed

    def _materialise(self) -> Compressed:
        raise ValueError("archive holds no compressed payload")

    def _verify(self) -> None:
        """Integrity hook: lazy archives crc-check here, once."""

    def decompress(self) -> np.ndarray:
        """The original int64 values."""
        self._verify()
        return self.compressed.decompress()

    def access(self, k: int) -> int:
        """Random access to position ``k``."""
        self._verify()
        return self.compressed.access(k)

    def decompress_range(self, lo: int, hi: int) -> np.ndarray:
        """Values at positions ``[lo, hi)``."""
        self._verify()
        return self.compressed.decompress_range(lo, hi)

    def size_bits(self) -> int:
        """Compressed size in bits (of the in-memory representation)."""
        return self.compressed.size_bits()

    def size_bytes(self) -> int:
        """Compressed size in bytes, rounded up."""
        return self.compressed.size_bytes()

    def compression_ratio(self, n: int | None = None) -> float:
        """Compressed bits / uncompressed bits."""
        return self.compressed.compression_ratio(n)

    def values(self) -> np.ndarray:
        """The decoded series as floats, decimal scaling applied.

        The decoded array is cached (and marked read-only) so repeated
        calls do not re-decompress the whole series.
        """
        if self._values is None:
            self._verify()
            vals = self.compressed.decompress() / 10.0**self.digits
            vals.setflags(write=False)
            self._values = vals
        return self._values

    def __len__(self) -> int:
        return len(self.compressed)


class _LazyArchive(Archive):
    """Archive over an mmapped file: parse on first touch, crc on first decode."""

    def __init__(
        self,
        *,
        digits: int,
        path: Path,
        mapped: mmap.mmap,
        frame_view: memoryview,
        frame: serialize.Frame,
        crc: int,
    ) -> None:
        super().__init__(
            compressed=None,
            digits=digits,
            codec_id=frame.codec_id,
            params=dict(frame.params),
            path=path,
        )
        self._mmap = mapped  # keeps the map alive alongside parsed views
        self._frame_view = frame_view
        self._frame = frame
        self._crc = crc
        self._verified = False

    def _materialise(self) -> Compressed:
        return load_compressed(self._frame_view)

    def _verify(self) -> None:
        if not self._verified:
            if zlib.crc32(self._frame_view) != self._crc:
                raise ValueError(
                    f"{self.path}: archive checksum mismatch (corrupt payload)"
                )
            self._verified = True

    def __len__(self) -> int:
        # The frame header records the count; no need to parse the payload.
        if self._compressed is None:
            return self._frame.n
        return len(self._compressed)


def save(path, compressed: Compressed, digits: int = 0) -> int:
    """Write ``compressed`` to ``path`` as a self-describing archive.

    Returns the number of bytes written.  Accepts any object implementing
    the :class:`Compressed` serialisation protocol (or an :class:`Archive`,
    unwrapped transparently).  The write is atomic: the archive appears
    under ``path`` complete and fsynced, or not at all.
    """
    if isinstance(compressed, Archive):
        digits = digits or compressed.digits
        compressed = compressed.compressed
    frame = compressed.to_bytes()
    blob = _HEADER.pack(ARCHIVE_MAGIC, digits, zlib.crc32(frame), len(frame)) + frame
    write_atomic(path, blob)
    return len(blob)


def open_archive(path, *, lazy: bool = False) -> Archive:
    """Read an archive written by :func:`save` (or by the legacy seed CLI).

    With ``lazy=True`` the file is memory-mapped instead of read: the
    container header is validated up front, the compressed object is parsed
    from the map on first use, and the crc is checked on first decode (see
    the module docstring for the full contract).  The default stays eager —
    fully read, verified, and parsed before returning.
    """
    path = Path(path)
    if lazy:
        return _open_lazy(path)
    data = path.read_bytes()
    if len(data) >= 8 and data[:8] == LEGACY_MAGIC:
        return _open_legacy(path, data)
    if len(data) < _HEADER.size:
        raise ValueError(f"{path}: not a repro archive (file too short)")
    magic, digits, crc, frame_len = _HEADER.unpack_from(data)
    if magic != ARCHIVE_MAGIC:
        raise ValueError(f"{path}: not a repro archive (bad magic)")
    frame = data[_HEADER.size :]
    if len(frame) != frame_len:
        raise ValueError(
            f"{path}: truncated or padded archive "
            f"(header says {frame_len} frame bytes, found {len(frame)})"
        )
    if zlib.crc32(frame) != crc:
        raise ValueError(f"{path}: archive checksum mismatch (corrupt payload)")
    compressed = load_compressed(frame)
    return Archive(
        compressed=compressed,
        digits=digits,
        codec_id=compressed.codec_id or "",
        params=dict(compressed.codec_params or {}),
        path=path,
    )


def _open_lazy(path: Path) -> Archive:
    view = mmap_view(path)
    if view is None:
        # Empty file or mmap-hostile filesystem: the eager path raises the
        # proper diagnostics (or handles the short file).
        return open_archive(path, lazy=False)
    mapped = view.obj
    if view.nbytes >= 8 and view[:8] == LEGACY_MAGIC:
        # The legacy format has no frame/crc to defer; parse it straight off
        # the map (zero-copy: NeaTSStorage adopts the mapped arrays).
        return _open_legacy(path, view)
    if view.nbytes < _HEADER.size:
        raise ValueError(f"{path}: not a repro archive (file too short)")
    magic, digits, crc, frame_len = _HEADER.unpack_from(view)
    if magic != ARCHIVE_MAGIC:
        raise ValueError(f"{path}: not a repro archive (bad magic)")
    frame_view = view[_HEADER.size :]
    if frame_view.nbytes != frame_len:
        raise ValueError(
            f"{path}: truncated or padded archive "
            f"(header says {frame_len} frame bytes, found {frame_view.nbytes})"
        )
    # Parses only the fixed frame header; payload decoding is deferred.
    frame = serialize.read_frame(frame_view)
    return _LazyArchive(
        digits=digits,
        path=path,
        mapped=mapped,
        frame_view=frame_view,
        frame=frame,
        crc=crc,
    )


def _open_legacy(path: Path, data) -> Archive:
    """Decode the seed CLI's ``NTSF0001`` format (NeaTS storage + digits)."""
    from ..core.compressor import CompressedSeries
    from ..core.storage import NeaTSStorage

    if len(data) < 12:
        raise ValueError(f"{path}: truncated legacy NeaTS archive")
    (digits,) = struct.unpack_from("<i", data, 8)
    storage = NeaTSStorage.from_bytes(data[12:])
    compressed = CompressedSeries(storage, [], 64 * storage.n)
    compressed.codec_id = "neats"
    compressed.codec_params = {}
    return Archive(
        compressed=compressed, digits=digits, codec_id="neats", params={}, path=path
    )
