"""The on-disk archive container: ``repro.save`` / ``repro.open``.

A repro archive is a self-describing file holding one compressed time series
from *any* registered codec::

    +----------+--------+-------+-----------+--------------------------+
    | RPAC0001 | digits | crc32 | frame len | codec frame (serialize)  |
    +----------+--------+-------+-----------+--------------------------+

The inner frame records the codec id, its parameters, and the payload, so
``repro.open`` needs no out-of-band knowledge; the crc32 catches bit rot and
truncation before any codec parsing runs.  ``digits`` is the dataset's
decimal scaling (§II of the paper), kept at the container level because it
describes the *values*, not the codec.

Two open modes exist:

* **eager** (the default) — read the whole file, verify the crc, and parse
  the frame up front.  Errors surface at :func:`open_archive` time.
* **lazy** (``open_archive(path, lazy=True)``, i.e. ``repro.open(path,
  lazy=True)``) — ``mmap`` the file and validate only the fixed container
  header.  The compressed object is parsed from a ``memoryview`` over the
  map on first touch (no full-file copy — native payloads adopt the mapped
  bytes directly), and the crc is verified once, on the first operation
  that decodes values (``access``/``decompress``/``decompress_range``/
  ``values``).  The map is held by the archive and by any arrays parsed
  out of it, so it stays valid for the life of those objects; corruption
  therefore surfaces at first decode instead of at open.

``save`` writes atomically (temp file + fsync + rename), matching the
SeriesDB shard-flush discipline: a crash mid-save leaves either the old
archive or the new one, never a truncated file.

The streaming-ingest counterpart is the **appendable archive** (magic
``RPAL0001``): a header naming the codec, followed by a sequence of
self-describing, individually crc'd frame records::

    +----------+--------+----------+--------+
    | RPAL0001 | digits | codec id | params |                    (header)
    +----------+--------+----------+--------+
    | frame len | crc32 | cumulative count | codec frame |       (record 0)
    | frame len | crc32 | cumulative count | codec frame |       (record 1)
    | ...

:class:`AppendableArchive` (or the :func:`append_open` facade) writes it:
each ``append(values)`` compresses *only* the new chunk and does one
fsync'd tail write — O(new values), no rewrite of sealed history, which is
what the paper's §IV-C1 streaming pipeline needs.  :func:`open_archive`
auto-detects the magic in both modes and exposes the record sequence as
one multi-run :class:`Compressed` view (binary search over the cumulative
counts).  Because each record carries its own crc, a lazy open verifies a
record on the first decode of *that* record only; and because appends are
strictly tail writes, a crash mid-append can only tear the final record —
openers detect the torn tail, ignore it, and keep every sealed record,
while the next writer truncates it away.  ``seal()`` compacts the record
sequence into a one-shot ``RPAC0001`` archive (one recompressed frame).

Archives written by the seed CLI (magic ``NTSF0001``, NeaTS-only) remain
readable in both modes: the container transparently upgrades them to a
:class:`~repro.core.compressor.CompressedSeries` tagged as ``neats``.
"""

from __future__ import annotations

import json
import mmap
import os
import struct
import zlib
from pathlib import Path

import numpy as np

from ..baselines.base import Compressed
from . import serialize
from .registry import codec_spec, get_codec, load_compressed

__all__ = [
    "ARCHIVE_MAGIC",
    "APPEND_MAGIC",
    "GROUP_MAGIC",
    "LEGACY_MAGIC",
    "Archive",
    "AppendableArchive",
    "GroupLog",
    "read_group_log",
    "save",
    "open_archive",
    "append_open",
    "write_atomic",
    "mmap_view",
]

ARCHIVE_MAGIC = b"RPAC0001"
APPEND_MAGIC = b"RPAL0001"
GROUP_MAGIC = b"RPGW0001"
LEGACY_MAGIC = b"NTSF0001"

_HEADER = struct.Struct("<8siIQ")  # magic, digits, crc32(frame), frame length
_APPEND_HEADER = struct.Struct("<8siHI")  # magic, digits, codec id len, params len
_RECORD = struct.Struct("<QIQ")  # frame length, crc32(frame), cumulative count
_GROUP_HEADER = struct.Struct("<8sHI")  # magic, codec id len, params len
_GROUP_RECORD = struct.Struct("<HiQI")  # sid len, digits, frame len, crc32(frame)


def write_atomic(path, blob: bytes) -> None:
    """Durable atomic write: temp file + fsync + rename + directory fsync.

    Readers never see a torn file, and once the rename is visible the data
    blocks are on disk — power loss cannot leave a truncated archive (or a
    manifest pointing at a zero-length shard) behind.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        fh.write(blob)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    try:
        dir_fd = os.open(path.parent, os.O_RDONLY)
    except OSError:  # pragma: no cover - platforms without directory fds
        return
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


def mmap_view(path) -> memoryview | None:
    """A read-only ``memoryview`` over ``path`` via mmap, or ``None``.

    ``None`` means the file cannot be mapped (empty file, mmap-hostile
    filesystem) and the caller should fall back to an eager read.  The view
    keeps the underlying map alive (``view.obj``); the map is unmapped when
    the last reference to the view — or anything parsed out of it — dies.
    """
    try:
        with open(path, "rb") as fh:
            return memoryview(mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ))
    except (ValueError, OSError):
        return None


class _LazyValues:
    """Read-only float view of an archive that decodes blocks on demand.

    Returned by :meth:`Archive.values` on lazily-opened archives.  Integer
    indexing routes through :meth:`Archive.access` and contiguous slices
    through :meth:`Archive.decompress_range`, so only the touched block(s)
    of a block-structured codec are decoded.  Whole-array uses (iteration,
    ``np.asarray``, fancy indexing, ``.flags``) materialise the full decoded
    array once and behave like the eager cache from then on.
    """

    __slots__ = ("_archive", "_scale", "_full")

    dtype = np.dtype(np.float64)
    ndim = 1

    def __init__(self, archive: "Archive") -> None:
        self._archive = archive
        self._scale = 10.0 ** archive.digits
        self._full: np.ndarray | None = None

    def _materialise(self) -> np.ndarray:
        if self._full is None:
            archive = self._archive
            archive._verify()
            vals = archive.compressed.decompress() / self._scale
            vals.setflags(write=False)
            self._full = vals
        return self._full

    def __getitem__(self, key):
        if self._full is not None:
            return self._full[key]
        if isinstance(key, (int, np.integer)):
            k = int(key)
            n = len(self._archive)
            if k < 0:
                k += n
            if not 0 <= k < n:
                raise IndexError(key)
            return self._archive.access(k) / self._scale
        if isinstance(key, slice):
            lo, hi, step = key.indices(len(self._archive))
            if step == 1:
                return self._archive.decompress_range(lo, max(lo, hi)) / self._scale
        return self._materialise()[key]

    def __len__(self) -> int:
        return len(self._archive)

    def __iter__(self):
        return iter(self._materialise())

    def __array__(self, dtype=None, copy=None) -> np.ndarray:
        full = self._materialise()
        if dtype is not None and np.dtype(dtype) != full.dtype:
            return full.astype(dtype)
        if copy:
            return full.copy()
        return full

    @property
    def shape(self) -> tuple[int]:
        return (len(self._archive),)

    @property
    def flags(self):
        """Ndarray flags of the materialised cache (always read-only)."""
        return self._materialise().flags


class Archive:
    """An opened archive: the compressed series plus container metadata.

    Delegates the :class:`Compressed` query protocol, so an archive can be
    used wherever a compressed series can.  Lazily-opened archives (see
    module docstring) materialise :attr:`compressed` on first touch and
    crc-check on first decode; eager archives are fully validated already.
    """

    def __init__(
        self,
        compressed: Compressed | None = None,
        digits: int = 0,
        codec_id: str = "",
        params: dict | None = None,
        path: Path | None = None,
    ) -> None:
        self._compressed = compressed
        self.digits = digits
        self.codec_id = codec_id
        self.params = {} if params is None else params
        self.path = path
        self._values: "np.ndarray | _LazyValues | None" = None
        self._closed = False

    #: lazy subclasses serve :meth:`values` through a block-decoding proxy
    _lazy_values = False

    @property
    def compressed(self) -> Compressed:
        """The compressed series (parsed on first access when lazy)."""
        self._check_open()
        if self._compressed is None:
            self._compressed = self._materialise()
        return self._compressed

    @property
    def closed(self) -> bool:
        """True once :meth:`close` ran; every decode raises from then on."""
        return self._closed

    def close(self) -> None:
        """Release the archive's backing resources (idempotent).

        Eager archives drop their parsed payload and cached values; lazy
        archives additionally release the memory map.  Arrays already
        decoded (or adopted zero-copy) before the close stay valid — numpy
        arrays parsed off the map hold their own buffer reference, so the
        map pages are unmapped only when the last such array dies.  Any
        *archive* operation after close raises ``ValueError``.
        """
        if self._closed:
            return
        self._closed = True
        compressed, self._compressed = self._compressed, None
        self._values = None
        close = getattr(compressed, "close", None)
        if callable(close):
            close()
        self._release()

    def __enter__(self) -> "Archive":
        self._check_open()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise ValueError(f"{self.path}: archive is closed")

    def _materialise(self) -> Compressed:
        raise ValueError("archive holds no compressed payload")

    def _release(self) -> None:
        """Resource hook: lazy archives unmap here."""

    def _verify(self) -> None:
        """Integrity hook: lazy archives crc-check here, once."""
        self._check_open()

    def decompress(self) -> np.ndarray:
        """The original int64 values."""
        self._verify()
        return self.compressed.decompress()

    def access(self, k: int) -> int:
        """Random access to position ``k``."""
        self._verify()
        return self.compressed.access(k)

    def decompress_range(self, lo: int, hi: int) -> np.ndarray:
        """Values at positions ``[lo, hi)``."""
        self._verify()
        return self.compressed.decompress_range(lo, hi)

    def size_bits(self) -> int:
        """Compressed size in bits (of the in-memory representation)."""
        return self.compressed.size_bits()

    def size_bytes(self) -> int:
        """Compressed size in bytes, rounded up."""
        return self.compressed.size_bytes()

    def compression_ratio(self, n: int | None = None) -> float:
        """Compressed bits / uncompressed bits."""
        return self.compressed.compression_ratio(n)

    def values(self) -> "np.ndarray | _LazyValues":
        """The decoded series as floats, decimal scaling applied.

        Eager archives decode once and cache a read-only array.  Lazy
        archives return a cached :class:`_LazyValues` proxy instead:
        ``values()[k]`` and contiguous slices decode only the touched
        block(s); whole-array uses materialise on first need.
        """
        if self._values is None:
            if self._lazy_values:
                self._values = _LazyValues(self)
            else:
                self._verify()
                vals = self.compressed.decompress() / 10.0**self.digits
                vals.setflags(write=False)
                self._values = vals
        return self._values

    def __len__(self) -> int:
        return len(self.compressed)


class _LazyArchive(Archive):
    """Archive over an mmapped file: parse on first touch, crc on first decode."""

    _lazy_values = True

    def __init__(
        self,
        *,
        digits: int,
        path: Path,
        mapped: mmap.mmap,
        frame_view: memoryview,
        frame: serialize.Frame,
        crc: int,
    ) -> None:
        super().__init__(
            compressed=None,
            digits=digits,
            codec_id=frame.codec_id,
            params=dict(frame.params),
            path=path,
        )
        # Keeps the map alive alongside parsed views; dropped on close.
        self._mmap: mmap.mmap | None = mapped
        self._frame_view: memoryview | None = frame_view
        self._frame = frame
        self._crc = crc
        self._verified = False

    def _materialise(self) -> Compressed:
        assert self._frame_view is not None  # _check_open ran first
        return load_compressed(self._frame_view)

    def _verify(self) -> None:
        self._check_open()
        if not self._verified:
            if zlib.crc32(self._frame_view) != self._crc:
                raise ValueError(
                    f"{self.path}: archive checksum mismatch (corrupt payload)"
                )
            self._verified = True

    def _release(self) -> None:
        view, self._frame_view = self._frame_view, None
        mapped, self._mmap = self._mmap, None
        self._frame = None  # its payload slice also references the map
        try:
            if view is not None:
                view.release()
            if mapped is not None:
                mapped.close()
        except BufferError:
            # Arrays parsed zero-copy off the map are still alive; dropping
            # our reference defers the unmap to when the last of them dies.
            pass

    def __len__(self) -> int:
        # The frame header records the count; no need to parse the payload.
        self._check_open()
        if self._compressed is None:
            return self._frame.n
        return len(self._compressed)


def save(path, compressed: Compressed, digits: int | None = None) -> int:
    """Write ``compressed`` to ``path`` as a self-describing archive.

    Returns the number of bytes written.  Accepts any object implementing
    the :class:`Compressed` serialisation protocol (or an :class:`Archive`,
    unwrapped transparently).  The write is atomic: the archive appears
    under ``path`` complete and fsynced, or not at all.

    ``digits`` defaults to ``None``, meaning "keep the archive's recorded
    scaling" when saving an :class:`Archive` and 0 otherwise — so an
    explicit ``digits=0`` really *sets* zero, it is not mistaken for
    "unspecified".  Saving a lazily-opened archive verifies its checksum
    first: re-serialising signs the frame with a fresh crc32, and signing
    unverified bytes would launder corruption into a valid-looking file.
    """
    if isinstance(compressed, Archive):
        if digits is None:
            digits = compressed.digits
        compressed._verify()
        compressed = compressed.compressed
    digits = 0 if digits is None else int(digits)
    frame = compressed.to_bytes()
    blob = _HEADER.pack(ARCHIVE_MAGIC, digits, zlib.crc32(frame), len(frame)) + frame
    write_atomic(path, blob)
    return len(blob)


def open_archive(path, *, lazy: bool = False) -> Archive:
    """Read an archive written by :func:`save` (or by the legacy seed CLI).

    With ``lazy=True`` the file is memory-mapped instead of read: the
    container header is validated up front, the compressed object is parsed
    from the map on first use, and the crc is checked on first decode (see
    the module docstring for the full contract).  The default stays eager —
    fully read, verified, and parsed before returning.
    """
    path = Path(path)
    if lazy:
        return _open_lazy(path)
    data = path.read_bytes()
    if len(data) >= 8 and data[:8] == LEGACY_MAGIC:
        return _open_legacy(path, data)
    if len(data) >= 8 and data[:8] == APPEND_MAGIC:
        return _open_append(path, data, lazy=False)
    if len(data) < _HEADER.size:
        raise ValueError(f"{path}: not a repro archive (file too short)")
    magic, digits, crc, frame_len = _HEADER.unpack_from(data)
    if magic != ARCHIVE_MAGIC:
        raise ValueError(f"{path}: not a repro archive (bad magic)")
    frame = data[_HEADER.size :]
    if len(frame) != frame_len:
        raise ValueError(
            f"{path}: truncated or padded archive "
            f"(header says {frame_len} frame bytes, found {len(frame)})"
        )
    if zlib.crc32(frame) != crc:
        raise ValueError(f"{path}: archive checksum mismatch (corrupt payload)")
    compressed = load_compressed(frame)
    return Archive(
        compressed=compressed,
        digits=digits,
        codec_id=compressed.codec_id or "",
        params=dict(compressed.codec_params or {}),
        path=path,
    )


def _open_lazy(path: Path) -> Archive:
    view = mmap_view(path)
    if view is None:
        # Empty file or mmap-hostile filesystem: the eager path raises the
        # proper diagnostics (or handles the short file).
        return open_archive(path, lazy=False)
    mapped = view.obj
    if view.nbytes >= 8 and view[:8] == LEGACY_MAGIC:
        # The legacy format has no frame/crc to defer; parse it straight off
        # the map (zero-copy: NeaTSStorage adopts the mapped arrays).
        return _open_legacy(path, view)
    if view.nbytes >= 8 and view[:8] == APPEND_MAGIC:
        # Record headers parse zero-copy off the map; each record's frame
        # is crc-checked and decoded on its own first touch.
        return _open_append(path, view, lazy=True)
    if view.nbytes < _HEADER.size:
        raise ValueError(f"{path}: not a repro archive (file too short)")
    magic, digits, crc, frame_len = _HEADER.unpack_from(view)
    if magic != ARCHIVE_MAGIC:
        raise ValueError(f"{path}: not a repro archive (bad magic)")
    frame_view = view[_HEADER.size :]
    if frame_view.nbytes != frame_len:
        raise ValueError(
            f"{path}: truncated or padded archive "
            f"(header says {frame_len} frame bytes, found {frame_view.nbytes})"
        )
    # Parses only the fixed frame header; payload decoding is deferred.
    frame = serialize.read_frame(frame_view)
    return _LazyArchive(
        digits=digits,
        path=path,
        mapped=mapped,
        frame_view=frame_view,
        frame=frame,
        crc=crc,
    )


# -- the appendable multi-frame container (RPAL0001) ---------------------------


def _scan_append(buf, path):
    """Parse an ``RPAL0001`` buffer: header plus every *complete* record.

    Returns ``(digits, codec_id, params, records, end)`` where ``records``
    is a list of ``(frame start, frame length, crc32, cumulative count)``
    and ``end`` is the offset just past the last complete record.  Bytes
    beyond ``end`` are a tail torn by an interrupted append: appends are
    strictly ordered fsync'd tail writes, so only the final record can be
    incomplete — it is ignored here and truncated by the next writer.
    Structural damage inside the header (not appendable, bad params)
    raises; a torn tail never does.
    """
    view = buf if isinstance(buf, memoryview) else memoryview(buf)
    if view.nbytes < _APPEND_HEADER.size:
        raise ValueError(f"{path}: truncated appendable archive header")
    magic, digits, idlen, plen = _APPEND_HEADER.unpack_from(view)
    if magic != APPEND_MAGIC:
        raise ValueError(f"{path}: not an appendable archive (bad magic)")
    pos = _APPEND_HEADER.size
    if view.nbytes < pos + idlen + plen:
        raise ValueError(f"{path}: truncated appendable archive header")
    codec_id = bytes(view[pos : pos + idlen]).decode("utf-8")
    try:
        params = json.loads(bytes(view[pos + idlen : pos + idlen + plen]))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ValueError(f"{path}: corrupt appendable archive params") from exc
    if not isinstance(params, dict):
        raise ValueError(f"{path}: corrupt appendable archive params")
    pos += idlen + plen
    records, total, end = [], 0, pos
    while view.nbytes - pos >= _RECORD.size:
        frame_len, crc, cum = _RECORD.unpack_from(view, pos)
        start = pos + _RECORD.size
        if start + frame_len > view.nbytes or cum <= total:
            break  # torn tail: the record header never finished landing
        try:
            span = serialize.frame_span(view[start : start + frame_len])
        except ValueError:
            break  # frame header torn mid-write
        if span != frame_len:
            break
        records.append((start, frame_len, crc, cum))
        total = cum
        pos = end = start + frame_len
    return digits, codec_id, params, records, end


class _AppendRun:
    """One record of an appendable archive: a frame slice plus its crc."""

    __slots__ = ("frame", "crc", "count", "compressed", "verified")

    def __init__(self, frame, crc: int, count: int) -> None:
        self.frame = frame
        self.crc = crc
        self.count = count
        self.compressed: Compressed | None = None
        self.verified = False


class _MultiRunCompressed(Compressed):
    """The record sequence of an appendable archive as one ``Compressed``.

    ``access``/``decompress_range`` binary-search the cumulative counts
    (the :class:`~repro.core.tiered.RunIndex` machinery shared with the
    tiered store) to touch only the records a query needs.  Each record is
    crc-verified and parsed on the first decode of *that* record — the
    per-record analogue of the lazy archive contract — so a point query
    into a 100-record archive pays for one record, not one hundred.
    """

    def __init__(
        self,
        runs: list[_AppendRun],
        *,
        codec_id: str,
        codec_params: dict,
        path=None,
        source=None,
    ) -> None:
        from ..core.tiered import RunIndex

        self._runs = runs
        self._index = RunIndex([run.count for run in runs])
        self._n = self._index.total
        self._path = path
        self._source = source  # keeps an mmap alive alongside the views
        self._closed = False
        self.truncated_bytes = 0  # torn-tail bytes ignored at open, if any
        self.codec_id = codec_id
        self.codec_params = dict(codec_params)

    @property
    def num_runs(self) -> int:
        """Number of append records (one per :meth:`AppendableArchive.append`)."""
        return len(self._runs)

    def close(self) -> None:
        """Drop every record's frame view and release the backing map."""
        if self._closed:
            return
        self._closed = True
        for run in self._runs:
            run.compressed = None
            run.frame = None
        source, self._source = self._source, None
        if source is None:
            return
        obj = source.obj
        try:
            source.release()
            if isinstance(obj, mmap.mmap):
                obj.close()
        except BufferError:
            pass  # decoded arrays still reference the map: deferred close

    def _run(self, i: int) -> Compressed:
        if self._closed:
            raise ValueError(f"{self._path}: archive is closed")
        run = self._runs[i]
        if run.compressed is None:
            if not run.verified:
                if zlib.crc32(run.frame) != run.crc:
                    raise ValueError(
                        f"{self._path}: appendable archive record {i} "
                        "checksum mismatch (corrupt record)"
                    )
                run.verified = True
            compressed = load_compressed(run.frame)
            if len(compressed) != run.count:
                raise ValueError(
                    f"{self._path}: appendable archive record {i} holds "
                    f"{len(compressed)} values, record header says {run.count}"
                )
            run.compressed = compressed
        return run.compressed

    def _load_all(self) -> None:
        """Verify and parse every record (the eager open path)."""
        for i in range(len(self._runs)):
            self._run(i)

    def access(self, k: int) -> int:
        if not 0 <= k < self._n:
            raise IndexError(k)
        i, local = self._index.locate(k)
        return self._run(i).access(local)

    def decompress_range(self, lo: int, hi: int) -> np.ndarray:
        if not 0 <= lo <= hi <= self._n:
            raise IndexError((lo, hi))
        out = [
            self._run(i).decompress_range(a, b)
            for i, a, b in self._index.spans(lo, hi)
        ]
        return np.concatenate(out) if out else np.empty(0, dtype=np.int64)

    def decompress(self) -> np.ndarray:
        return self.decompress_range(0, self._n)

    def size_bits(self) -> int:
        return sum(self._run(i).size_bits() for i in range(len(self._runs)))

    def to_bytes(self) -> bytes:
        """One frame covering every record — what sealing compacts to.

        Appendable codecs are lossless (enforced at :meth:`create` time),
        so recompressing the concatenated values with the recorded codec
        and params yields exactly the frame a one-shot compression of the
        full series would have produced.
        """
        fresh = get_codec(self.codec_id, **self.codec_params).compress(
            self.decompress()
        )
        return fresh.to_bytes()


def _open_append(path: Path, buf, *, lazy: bool) -> Archive:
    """An :class:`Archive` over an ``RPAL0001`` buffer (bytes or mmap view)."""
    digits, codec_id, params, records, end = _scan_append(buf, path)
    view = buf if isinstance(buf, memoryview) else memoryview(buf)
    runs, total = [], 0
    for start, frame_len, crc, cum in records:
        runs.append(_AppendRun(view[start : start + frame_len], crc, cum - total))
        total = cum
    compressed = _MultiRunCompressed(
        runs,
        codec_id=codec_id,
        codec_params=params,
        path=path,
        source=view if lazy else None,
    )
    compressed.truncated_bytes = view.nbytes - end
    if not lazy:
        compressed._load_all()  # eager contract: errors surface at open time
    return Archive(
        compressed=compressed,
        digits=digits,
        codec_id=codec_id,
        params=dict(params),
        path=path,
    )


class AppendableArchive:
    """The writer handle of an ``RPAL0001`` appendable archive.

    Create one with :meth:`create` (new file) or :meth:`open` (resume an
    existing one) — or :func:`append_open`, which picks.  Each
    :meth:`append` compresses only the new values and lands them as one
    fsync'd tail record: O(new values) work however large the sealed
    history is.  Reading goes through :func:`open_archive`, which serves
    the records as a single logical series; :meth:`seal` compacts the
    archive into a one-shot ``RPAC0001`` file.

    The handle is single-writer: two handles appending to the same file
    interleave records and corrupt the tail.  Opening a file whose final
    record was torn by a crash truncates the torn tail before the first
    new append, so sealed records are never overwritten.
    """

    def __init__(self) -> None:  # use create()/open()/append_open()
        self.path: Path = Path()
        self.digits = 0
        self.codec_id = ""
        self.params: dict = {}
        self._total = 0
        self._num_records = 0
        self._end = 0
        self._compressor = None
        self._sealed = False

    @classmethod
    def create(cls, path, *, codec: str = "gorilla", digits: int = 0, **params):
        """Start a new appendable archive at ``path`` (header only, atomic).

        ``codec`` must be a lossless registry id: appends and seals
        recompress decoded values, and recompressing an *approximation*
        would compound a lossy codec's error beyond its ε guarantee.
        """
        if codec_spec(codec).lossy:
            raise ValueError(
                f"appendable archives require a lossless codec, got {codec!r}: "
                "sealing recompresses decoded values, which would "
                "re-approximate an approximation"
            )
        get_codec(codec, **params)  # probe: bad params must fail before I/O
        path = Path(path)
        if path.exists():
            raise ValueError(
                f"{path} already exists; use AppendableArchive.open (or "
                "append_open) to resume it"
            )
        cid = codec.encode("utf-8")
        pjson = json.dumps(params or {}, sort_keys=True).encode("utf-8")
        header = _APPEND_HEADER.pack(APPEND_MAGIC, int(digits), len(cid),
                                     len(pjson)) + cid + pjson
        write_atomic(path, header)
        archive = cls()
        archive.path = path
        archive.digits = int(digits)
        archive.codec_id = codec
        archive.params = dict(params)
        archive._end = len(header)
        return archive

    @classmethod
    def open(cls, path):
        """Resume an existing appendable archive for writing.

        Scans the record headers (no payload decoding — O(records) seeks),
        positions the write cursor after the last complete record, and
        drops any torn tail so the next append lands on sealed ground.
        """
        path = Path(path)
        data = path.read_bytes()
        if data[:8] == ARCHIVE_MAGIC:
            raise ValueError(
                f"{path} is a sealed one-shot archive (RPAC0001); it cannot "
                "be appended to — create a new appendable archive instead"
            )
        digits, codec_id, params, records, end = _scan_append(data, path)
        archive = cls()
        archive.path = path
        archive.digits = digits
        archive.codec_id = codec_id
        archive.params = dict(params)
        archive._total = records[-1][3] if records else 0
        archive._num_records = len(records)
        archive._end = end
        if len(data) > end:  # torn tail from a crashed append: drop it now
            with open(path, "r+b") as fh:
                fh.truncate(end)
                fh.flush()
                os.fsync(fh.fileno())
        return archive

    def __len__(self) -> int:
        return self._total

    @property
    def num_records(self) -> int:
        """Records written so far (one per successful :meth:`append`)."""
        return self._num_records

    def _codec(self):
        if self._compressor is None:
            self._compressor = get_codec(self.codec_id, **self.params)
        return self._compressor

    def append(self, values) -> int:
        """Compress ``values`` and append them as one fsync'd tail record.

        Returns the new total value count.  The record is on disk when
        this returns; a crash mid-write tears only this record, which
        openers skip and the next writer truncates.  Appending an empty
        array is a no-op.
        """
        if self._sealed:
            raise ValueError(
                f"{self.path} was sealed into a one-shot archive; this "
                "handle can no longer append"
            )
        values = np.asarray(values, dtype=np.int64)
        if values.ndim != 1:
            raise ValueError("expected a 1-D array")
        if len(values) == 0:
            return self._total
        frame = self._codec().compress(values).to_bytes()
        new_total = self._total + len(values)
        record = _RECORD.pack(len(frame), zlib.crc32(frame), new_total) + frame
        with open(self.path, "r+b") as fh:
            fh.seek(self._end)
            fh.write(record)
            fh.flush()
            os.fsync(fh.fileno())
        self._end += len(record)
        self._total = new_total
        self._num_records += 1
        return new_total

    def append_many(self, batches) -> int:
        """Append K value batches as K records with ONE write and ONE fsync.

        ``batches`` is an iterable of 1-D int64 arrays.  The on-disk result
        is byte-identical to calling :meth:`append` once per batch — same
        record headers, same cumulative counts — but the records are
        concatenated in memory and land with a single tail write and a
        single ``fsync``, which is what makes batched ingest (SeriesDB
        group commit) pay one durability round-trip per batch instead of
        one per record.  Empty batches are skipped, matching ``append``'s
        empty no-op; returns the new total value count.

        Durability is all-or-tail: a crash mid-write tears only the
        suffix of this write, and openers keep every record that landed
        completely.
        """
        if self._sealed:
            raise ValueError(
                f"{self.path} was sealed into a one-shot archive; this "
                "handle can no longer append"
            )
        arrays = []
        for values in batches:
            values = np.asarray(values, dtype=np.int64)
            if values.ndim != 1:
                raise ValueError("expected a 1-D array")
            if len(values):
                arrays.append(values)
        if not arrays:
            return self._total
        blob, new_total = bytearray(), self._total
        for values in arrays:
            frame = self._codec().compress(values).to_bytes()
            new_total += len(values)
            blob += _RECORD.pack(len(frame), zlib.crc32(frame), new_total)
            blob += frame
        with open(self.path, "r+b") as fh:
            fh.seek(self._end)
            fh.write(blob)
            fh.flush()
            os.fsync(fh.fileno())
        self._end += len(blob)
        self._total = new_total
        self._num_records += len(arrays)
        return new_total

    def seal(self, dst=None) -> Path:
        """Compact the record sequence into a one-shot ``RPAC0001`` archive.

        Decodes every record (verifying each crc), recompresses the full
        series as a single frame, and writes it atomically to ``dst``
        (default: in place, replacing the appendable file).  The handle
        refuses further appends afterwards.
        """
        if self._total == 0:
            raise ValueError(f"cannot seal {self.path}: no records appended yet")
        archive = open_archive(self.path)  # eager: every record verified
        target = Path(dst) if dst is not None else self.path
        save(target, archive)
        self._sealed = True
        return target


def append_open(
    path, *, codec: str | None = None, digits: int | None = None, **params
):
    """Open ``path`` for appending, creating the archive when missing.

    The facade of the streaming ingest path (``repro.append_open``).  For
    an existing archive the recorded configuration wins; passing ``codec``,
    ``digits``, or ``params`` that contradict it raises instead of silently
    mixing frames from different compressors or decimal scalings.  When
    creating, ``codec`` defaults to ``"gorilla"`` and ``digits`` to 0.
    """
    path = Path(path)
    if path.exists():
        archive = AppendableArchive.open(path)
        if codec is not None and codec != archive.codec_id:
            raise ValueError(
                f"{path} was created with codec {archive.codec_id!r}; "
                f"cannot append with {codec!r}"
            )
        if digits is not None and int(digits) != archive.digits:
            raise ValueError(
                f"{path} records digits={archive.digits}; appending "
                f"digits={int(digits)} values would mix scales"
            )
        if params and dict(params) != archive.params:
            raise ValueError(
                f"{path} was created with params {archive.params!r}; "
                f"cannot append with {dict(params)!r}"
            )
        return archive
    return AppendableArchive.create(
        path, codec=codec or "gorilla", digits=digits or 0, **params
    )


def _scan_group(data, path):
    """Parse an ``RPGW0001`` buffer: header plus every *complete* record.

    Returns ``(codec_id, params, records, end)`` where ``records`` is a
    list of ``(series id, digits, frame start, frame length, crc32)`` and
    ``end`` is the offset just past the last complete record.  Like
    :func:`_scan_append`, bytes beyond ``end`` are a tail torn by an
    interrupted group write — ignored here, truncated by the next writer.
    Structural damage in the header raises; a torn tail never does.
    """
    view = memoryview(data)
    if view.nbytes < _GROUP_HEADER.size:
        raise ValueError(f"{path}: truncated group log header")
    magic, idlen, plen = _GROUP_HEADER.unpack_from(view)
    if magic != GROUP_MAGIC:
        raise ValueError(f"{path}: not a group log (bad magic)")
    pos = _GROUP_HEADER.size
    if view.nbytes < pos + idlen + plen:
        raise ValueError(f"{path}: truncated group log header")
    codec_id = bytes(view[pos : pos + idlen]).decode("utf-8")
    try:
        params = json.loads(bytes(view[pos + idlen : pos + idlen + plen]))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ValueError(f"{path}: corrupt group log params") from exc
    if not isinstance(params, dict):
        raise ValueError(f"{path}: corrupt group log params")
    pos += idlen + plen
    records, end = [], pos
    while view.nbytes - pos >= _GROUP_RECORD.size:
        sid_len, digits, frame_len, crc = _GROUP_RECORD.unpack_from(view, pos)
        sid_start = pos + _GROUP_RECORD.size
        frame_start = sid_start + sid_len
        if sid_len == 0 or frame_start + frame_len > view.nbytes:
            break  # torn tail: the record never finished landing
        try:
            sid = bytes(view[sid_start:frame_start]).decode("utf-8")
        except UnicodeDecodeError:
            break  # series id torn mid-write
        try:
            span = serialize.frame_span(view[frame_start : frame_start + frame_len])
        except ValueError:
            break  # frame header torn mid-write
        if span != frame_len:
            break
        records.append((sid, digits, frame_start, frame_len, crc))
        pos = end = frame_start + frame_len
    return codec_id, params, records, end


class GroupLog:
    """The group-commit write-ahead log of a SeriesDB (``RPGW0001``).

    A SeriesDB in group-commit mode replaces its per-series append logs
    with ONE shared log per directory: every record carries its series id
    and digits alongside the codec frame, so one ``ingest_many`` batch —
    however many series it touches — lands as a single tail write with a
    single ``fsync``.  Layout::

        +----------+----------+--------+
        | RPGW0001 | codec id | params |                       (header)
        +----------+----------+--------+
        | sid len | digits | frame len | crc32 | sid | frame | (record 0)
        | sid len | digits | frame len | crc32 | sid | frame | (record 1)
        | ...

    Records from different series interleave in ingest order; recovery
    (:func:`read_group_log`) regroups them per series.  The torn-tail
    contract matches :class:`AppendableArchive`: strictly ordered tail
    writes mean a crash can only tear the final write's suffix, which
    openers skip and the next writer truncates.
    """

    def __init__(self) -> None:  # use create()/open()
        self.path: Path = Path()
        self.codec_id = ""
        self.params: dict = {}
        self._num_records = 0
        self._end = 0
        self._compressor = None

    @classmethod
    def create(cls, path, *, codec: str = "gorilla", **params) -> "GroupLog":
        """Start a new group log at ``path`` (header only, atomic)."""
        if codec_spec(codec).lossy:
            raise ValueError(
                f"group logs require a lossless codec, got {codec!r}: "
                "replay re-ingests decoded values, which would "
                "re-approximate an approximation"
            )
        get_codec(codec, **params)  # probe: bad params must fail before I/O
        path = Path(path)
        if path.exists():
            raise ValueError(
                f"{path} already exists; use GroupLog.open to resume it"
            )
        cid = codec.encode("utf-8")
        pjson = json.dumps(params or {}, sort_keys=True).encode("utf-8")
        header = _GROUP_HEADER.pack(GROUP_MAGIC, len(cid), len(pjson))
        write_atomic(path, header + cid + pjson)
        log = cls()
        log.path = path
        log.codec_id = codec
        log.params = dict(params)
        log._end = _GROUP_HEADER.size + len(cid) + len(pjson)
        return log

    @classmethod
    def open(cls, path) -> "GroupLog":
        """Resume an existing group log for writing (drops any torn tail)."""
        path = Path(path)
        data = path.read_bytes()
        codec_id, params, records, end = _scan_group(data, path)
        log = cls()
        log.path = path
        log.codec_id = codec_id
        log.params = dict(params)
        log._num_records = len(records)
        log._end = end
        if len(data) > end:  # torn tail from a crashed write: drop it now
            with open(path, "r+b") as fh:
                fh.truncate(end)
                fh.flush()
                os.fsync(fh.fileno())
        return log

    @property
    def num_records(self) -> int:
        """Records written so far (one per non-empty series batch)."""
        return self._num_records

    def _codec(self):
        if self._compressor is None:
            self._compressor = get_codec(self.codec_id, **self.params)
        return self._compressor

    def append_group(self, batches) -> int:
        """Land a whole ingest batch as one fsync'd tail write.

        ``batches`` is an iterable of ``(series_id, digits, values)``
        triples; each non-empty triple becomes one record, and ALL of them
        share a single write + ``fsync`` — the group commit.  Returns the
        number of records written.
        """
        blob, written = bytearray(), 0
        for series_id, digits, values in batches:
            if not series_id:
                raise ValueError("group log records need a non-empty series id")
            values = np.asarray(values, dtype=np.int64)
            if values.ndim != 1:
                raise ValueError("expected a 1-D array")
            if len(values) == 0:
                continue
            sid = series_id.encode("utf-8")
            frame = self._codec().compress(values).to_bytes()
            blob += _GROUP_RECORD.pack(
                len(sid), int(digits), len(frame), zlib.crc32(frame)
            )
            blob += sid + frame
            written += 1
        if not written:
            return 0
        with open(self.path, "r+b") as fh:
            fh.seek(self._end)
            fh.write(blob)
            fh.flush()
            os.fsync(fh.fileno())
        self._end += len(blob)
        self._num_records += written
        return written


def read_group_log(path):
    """Decode a group log into ``[(series_id, digits, values), ...]``.

    The recovery-side reader: every complete record is crc-verified and
    decompressed; a torn tail is skipped exactly as :meth:`GroupLog.open`
    would truncate it.  A crc mismatch on a *sealed* record is real
    corruption (not a crash artefact) and raises.
    """
    path = Path(path)
    data = path.read_bytes()
    codec_id, params, records, _end = _scan_group(data, path)
    view = memoryview(data)
    out = []
    for sid, digits, start, frame_len, crc in records:
        frame = view[start : start + frame_len]
        if zlib.crc32(frame) != crc:
            raise ValueError(
                f"{path}: crc mismatch in group log record for series {sid!r}"
            )
        values = load_compressed(bytes(frame)).decompress()
        out.append((sid, digits, np.asarray(values, dtype=np.int64)))
    return out


def _open_legacy(path: Path, data) -> Archive:
    """Decode the seed CLI's ``NTSF0001`` format (NeaTS storage + digits)."""
    from ..core.compressor import CompressedSeries
    from ..core.storage import NeaTSStorage

    if len(data) < 12:
        raise ValueError(f"{path}: truncated legacy NeaTS archive")
    (digits,) = struct.unpack_from("<i", data, 8)
    storage = NeaTSStorage.from_bytes(data[12:])
    compressed = CompressedSeries(storage, [], 64 * storage.n)
    compressed.codec_id = "neats"
    compressed.codec_params = {}
    return Archive(
        compressed=compressed, digits=digits, codec_id="neats", params={}, path=path
    )
