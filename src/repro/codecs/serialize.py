"""The codec frame: the self-describing serialised form of a ``Compressed``.

Every compressed series in the repo serialises to the same framed layout,
so a byte string is decodable without knowing in advance which of the 13+
codecs produced it::

    +------+---------+------+--------------+----------------+-----+-------------+
    | RPCF | version | kind | codec id len | params json len|  n  | payload len |
    +------+---------+------+--------------+----------------+-----+-------------+
    | codec id (utf-8) | params (json, utf-8) | payload ...                     |
    +---------------------------------------------------------------------------+

Two payload kinds exist:

* ``native`` — a codec-specific byte layout (NeaTS storage, block-wise
  pointers, XOR streams); loading is a direct parse, no recompression.
* ``values`` — the generic fallback: the original int64 values, delta-coded
  and deflated.  Loading re-runs the (deterministic) compressor with the
  recorded parameters, which reproduces the exact same compressed object —
  identical ``decompress()``, ``access()``, and ``size_bits()``.

The frame is what :meth:`repro.baselines.base.Compressed.to_bytes` emits and
what the archive container of :mod:`repro.codecs.container` wraps on disk.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass

import numpy as np

__all__ = [
    "FRAME_MAGIC",
    "FRAME_VERSION",
    "KIND_NATIVE",
    "KIND_VALUES",
    "Frame",
    "write_frame",
    "read_frame",
    "encode_values",
    "decode_values",
]

FRAME_MAGIC = b"RPCF"
FRAME_VERSION = 1

KIND_VALUES = 0
KIND_NATIVE = 1

_HEADER = struct.Struct("<4sBBHIqQ")  # magic, version, kind, idlen, plen, n, paylen


@dataclass(frozen=True)
class Frame:
    """A parsed codec frame."""

    codec_id: str
    params: dict
    n: int
    kind: int
    payload: bytes

    @property
    def native(self) -> bool:
        """Whether the payload uses the codec's own byte layout."""
        return self.kind == KIND_NATIVE


def write_frame(
    codec_id: str, params: dict, n: int, kind: int, payload: bytes
) -> bytes:
    """Assemble a frame byte string."""
    if kind not in (KIND_VALUES, KIND_NATIVE):
        raise ValueError(f"unknown frame kind {kind!r}")
    cid = codec_id.encode("utf-8")
    try:
        pjson = json.dumps(params or {}, sort_keys=True).encode("utf-8")
    except TypeError as exc:
        raise ValueError(
            f"codec params for {codec_id!r} are not JSON-serialisable: {params!r}"
        ) from exc
    header = _HEADER.pack(
        FRAME_MAGIC, FRAME_VERSION, kind, len(cid), len(pjson), n, len(payload)
    )
    return header + cid + pjson + payload


def read_frame(data: bytes) -> Frame:
    """Parse a frame byte string, validating structure and lengths."""
    if len(data) < _HEADER.size:
        raise ValueError("truncated codec frame: header incomplete")
    magic, version, kind, idlen, plen, n, paylen = _HEADER.unpack_from(data)
    if magic != FRAME_MAGIC:
        raise ValueError("not a repro codec frame (bad magic)")
    if version != FRAME_VERSION:
        raise ValueError(f"unsupported codec frame version {version}")
    if kind not in (KIND_VALUES, KIND_NATIVE):
        raise ValueError(f"corrupt codec frame: unknown payload kind {kind}")
    pos = _HEADER.size
    end = pos + idlen + plen + paylen
    if len(data) != end:
        raise ValueError(
            f"truncated codec frame: expected {end} bytes, got {len(data)}"
        )
    codec_id = data[pos : pos + idlen].decode("utf-8")
    pos += idlen
    try:
        params = json.loads(data[pos : pos + plen].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ValueError("corrupt codec frame: bad params block") from exc
    if not isinstance(params, dict):
        raise ValueError("corrupt codec frame: params must be an object")
    pos += plen
    return Frame(codec_id, params, n, kind, data[pos:])


def encode_values(values: np.ndarray) -> bytes:
    """The generic payload: delta-coded int64 values, deflated."""
    values = np.asarray(values, dtype=np.int64)
    # Deltas concentrate the entropy for the smooth series this repo targets;
    # the cast wraps on int64 overflow and unwraps identically on decode.
    # The implicit 0 prefix makes the first delta the first value itself.
    deltas = np.diff(values, prepend=np.zeros(1, dtype=np.int64)).astype(np.int64)
    return zlib.compress(deltas.tobytes(), 6)


def decode_values(payload: bytes, n: int) -> np.ndarray:
    """Invert :func:`encode_values`."""
    try:
        raw = zlib.decompress(payload)
    except zlib.error as exc:
        raise ValueError("corrupt codec frame: payload inflate failed") from exc
    deltas = np.frombuffer(raw, dtype=np.int64)
    if len(deltas) != n:
        raise ValueError(
            f"corrupt codec frame: payload holds {len(deltas)} values, header says {n}"
        )
    return np.cumsum(deltas, dtype=np.int64)
