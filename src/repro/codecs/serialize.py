"""The codec frame: the self-describing serialised form of a ``Compressed``.

Every compressed series in the repo serialises to the same framed layout,
so a byte string is decodable without knowing in advance which of the 13+
codecs produced it::

    +------+---------+------+--------------+----------------+-----+-------------+
    | RPCF | version | kind | codec id len | params json len|  n  | payload len |
    +------+---------+------+--------------+----------------+-----+-------------+
    | codec id (utf-8) | params (json, utf-8) | payload ...                     |
    +---------------------------------------------------------------------------+

Two payload kinds exist:

* ``native`` — a codec-specific byte layout (NeaTS storage, block-wise
  pointers, XOR streams); loading is a direct parse, no recompression.
* ``values`` — the generic fallback: the original int64 values, delta-coded
  and deflated.  Loading re-runs the (deterministic) compressor with the
  recorded parameters, which reproduces the exact same compressed object —
  identical ``decompress()``, ``access()``, and ``size_bits()``.

The frame is what :meth:`repro.baselines.base.Compressed.to_bytes` emits and
what the archive container of :mod:`repro.codecs.container` wraps on disk.

:func:`read_frame` is zero-copy: it accepts any byte buffer — ``bytes``,
``memoryview``, an ``mmap`` — and the returned :attr:`Frame.payload` is a
``memoryview`` slice into that buffer, never a copy.  Every native payload
parser therefore works directly over a memory-mapped archive, which is what
makes the lazy open path of :mod:`repro.codecs.container` O(parse) instead of
O(file read).  Callers must keep the source buffer alive while the payload
(or anything parsed from it) is in use.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass

import numpy as np

__all__ = [
    "FRAME_MAGIC",
    "FRAME_VERSION",
    "KIND_NATIVE",
    "KIND_VALUES",
    "Frame",
    "write_frame",
    "read_frame",
    "frame_span",
    "encode_values",
    "decode_values",
]

FRAME_MAGIC = b"RPCF"
FRAME_VERSION = 1

KIND_VALUES = 0
KIND_NATIVE = 1

_HEADER = struct.Struct("<4sBBHIqQ")  # magic, version, kind, idlen, plen, n, paylen


@dataclass(frozen=True)
class Frame:
    """A parsed codec frame.

    ``payload`` is a ``memoryview`` into the buffer :func:`read_frame` was
    given (zero-copy); call ``bytes(frame.payload)`` when an owned copy is
    needed.
    """

    codec_id: str
    params: dict
    n: int
    kind: int
    payload: "bytes | memoryview"

    @property
    def native(self) -> bool:
        """Whether the payload uses the codec's own byte layout."""
        return self.kind == KIND_NATIVE


def write_frame(
    codec_id: str, params: dict, n: int, kind: int, payload: bytes
) -> bytes:
    """Assemble a frame byte string."""
    if kind not in (KIND_VALUES, KIND_NATIVE):
        raise ValueError(f"unknown frame kind {kind!r}")
    cid = codec_id.encode("utf-8")
    try:
        pjson = json.dumps(params or {}, sort_keys=True).encode("utf-8")
    except TypeError as exc:
        raise ValueError(
            f"codec params for {codec_id!r} are not JSON-serialisable: {params!r}"
        ) from exc
    header = _HEADER.pack(
        FRAME_MAGIC, FRAME_VERSION, kind, len(cid), len(pjson), n, len(payload)
    )
    return header + cid + pjson + payload


def read_frame(data) -> Frame:
    """Parse a frame from any byte buffer, validating structure and lengths.

    ``data`` may be ``bytes``, a ``memoryview``, or an ``mmap``; the payload
    of the returned :class:`Frame` is a zero-copy ``memoryview`` slice of it.
    """
    view = data if isinstance(data, memoryview) else memoryview(data)
    total = view.nbytes
    if total < _HEADER.size:
        raise ValueError("truncated codec frame: header incomplete")
    magic, version, kind, idlen, plen, n, paylen = _HEADER.unpack_from(view)
    if magic != FRAME_MAGIC:
        raise ValueError("not a repro codec frame (bad magic)")
    if version != FRAME_VERSION:
        raise ValueError(f"unsupported codec frame version {version}")
    if kind not in (KIND_VALUES, KIND_NATIVE):
        raise ValueError(f"corrupt codec frame: unknown payload kind {kind}")
    if n < 0:
        raise ValueError(f"corrupt codec frame: negative value count {n}")
    pos = _HEADER.size
    avail = total - pos - idlen - plen
    if avail < 0:
        raise ValueError(
            "corrupt codec frame: id/params lengths exceed the frame"
        )
    if paylen > avail:
        raise ValueError(
            f"corrupt codec frame: payload length {paylen} overflows the "
            f"{total}-byte frame"
        )
    if paylen < avail:
        raise ValueError(
            f"truncated codec frame: expected {pos + idlen + plen + paylen} "
            f"bytes, got {total}"
        )
    codec_id = bytes(view[pos : pos + idlen]).decode("utf-8")
    pos += idlen
    try:
        params = json.loads(bytes(view[pos : pos + plen]).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ValueError("corrupt codec frame: bad params block") from exc
    if not isinstance(params, dict):
        raise ValueError("corrupt codec frame: params must be an object")
    pos += plen
    return Frame(codec_id, params, n, kind, view[pos : pos + paylen])


def frame_span(data) -> int:
    """The total byte length of the frame starting at ``data[0]``.

    Parses only the fixed frame header — no params or payload decoding —
    so callers scanning a multi-frame buffer (the appendable container of
    :mod:`repro.codecs.container`) can cross-check a record's claimed
    length against the frame's own accounting.  ``data`` may extend past
    the frame; raises ``ValueError`` when even the header is incomplete
    or malformed.
    """
    view = data if isinstance(data, memoryview) else memoryview(data)
    if view.nbytes < _HEADER.size:
        raise ValueError("truncated codec frame: header incomplete")
    magic, version, kind, idlen, plen, n, paylen = _HEADER.unpack_from(view)
    if magic != FRAME_MAGIC:
        raise ValueError("not a repro codec frame (bad magic)")
    if version != FRAME_VERSION:
        raise ValueError(f"unsupported codec frame version {version}")
    if kind not in (KIND_VALUES, KIND_NATIVE):
        raise ValueError(f"corrupt codec frame: unknown payload kind {kind}")
    if n < 0:
        raise ValueError(f"corrupt codec frame: negative value count {n}")
    return _HEADER.size + idlen + plen + paylen


def encode_values(values: np.ndarray) -> bytes:
    """The generic payload: delta-coded int64 values, deflated."""
    values = np.asarray(values, dtype=np.int64)
    # Deltas concentrate the entropy for the smooth series this repo targets;
    # the cast wraps on int64 overflow and unwraps identically on decode.
    # The implicit 0 prefix makes the first delta the first value itself.
    deltas = np.diff(values, prepend=np.zeros(1, dtype=np.int64)).astype(np.int64)
    return zlib.compress(deltas.tobytes(), 6)


def decode_values(payload, n: int) -> np.ndarray:
    """Invert :func:`encode_values` (``payload`` may be any byte buffer)."""
    if n < 0:
        raise ValueError(f"corrupt codec frame: negative value count {n}")
    try:
        raw = zlib.decompress(payload)
    except zlib.error as exc:
        raise ValueError("corrupt codec frame: payload inflate failed") from exc
    deltas = np.frombuffer(raw, dtype=np.int64)
    if len(deltas) != n:
        raise ValueError(
            f"corrupt codec frame: payload holds {len(deltas)} values, header says {n}"
        )
    return np.cumsum(deltas, dtype=np.int64)
