"""First-class codec registry: every compressor in the repo, by stable id.

The paper's deployment story (§IV-C1) treats compressors as interchangeable
parts — a cheap streaming codec at ingest, NeaTS at rest.  This registry is
the API that makes them interchangeable: each codec registers under a stable
string id with its capability flags, and anything in the system (the CLI, the
tiered store, the benchmark harness, archives on disk) refers to codecs by id
only.

>>> from repro.codecs import available_codecs, get_codec
>>> "neats" in available_codecs() and "gorilla" in available_codecs()
True
>>> import numpy as np
>>> c = get_codec("gorilla").compress(np.arange(100, dtype=np.int64))
>>> c.codec_id
'gorilla'

Registering a codec::

    @register_codec("mycodec", native_random_access=True)
    def make_mycodec(**params):
        return MyCompressor(**params)

The factory returns a fresh compressor (anything with a ``compress(values)``
method producing a :class:`~repro.baselines.base.Compressed`).  The registry
wraps ``compress`` so every produced object carries its codec id and params —
that provenance is what makes the framed serialisation self-describing.
"""

from __future__ import annotations

import re
from collections.abc import Callable
from dataclasses import dataclass, field

from . import serialize

__all__ = [
    "CodecSpec",
    "register_codec",
    "unregister_codec",
    "get_codec",
    "available_codecs",
    "codec_spec",
    "load_compressed",
]

_ID_RE = re.compile(r"^[a-z][a-z0-9_]*$")


@dataclass(frozen=True)
class CodecSpec:
    """Registry entry: identity, factory, and capability flags of one codec."""

    codec_id: str
    factory: Callable
    #: display name in the paper's Table III line-up (benchmark rendering)
    table_name: str = ""
    #: random access without a block-wise adapter (paper §IV-A2)
    native_random_access: bool = False
    #: reconstruction is approximate (error-bounded), not bit-exact
    lossy: bool = False
    #: the codec consumes the dataset's decimal ``digits`` scaling
    needs_digits: bool = False
    #: construction params that must be passed explicitly (e.g. ``eps`` for
    #: the lossy codecs — an error bound is a contract, never a default)
    required_params: tuple = ()
    description: str = ""
    #: parse a native frame payload back into a Compressed (None = values-only)
    load_native: Callable | None = field(default=None, compare=False)


_REGISTRY: dict[str, CodecSpec] = {}
_BUILTINS_LOADED = False


def _ensure_builtins() -> None:
    """Register the built-in line-up on first use (breaks the import cycle)."""
    global _BUILTINS_LOADED
    if not _BUILTINS_LOADED:
        _BUILTINS_LOADED = True
        from . import adapters  # noqa: F401  (registers on import)


def register_codec(
    codec_id: str,
    *,
    table_name: str = "",
    native_random_access: bool = False,
    lossy: bool = False,
    needs_digits: bool = False,
    required_params: tuple = (),
    description: str = "",
    load_native: Callable | None = None,
    overwrite: bool = False,
):
    """Class/function decorator registering a codec factory under ``codec_id``."""
    if not _ID_RE.match(codec_id):
        raise ValueError(
            f"invalid codec id {codec_id!r}: use lowercase letters, digits, '_'"
        )

    def deco(factory: Callable) -> Callable:
        if codec_id in _REGISTRY and not overwrite:
            raise ValueError(f"codec id {codec_id!r} is already registered")
        _REGISTRY[codec_id] = CodecSpec(
            codec_id=codec_id,
            factory=factory,
            table_name=table_name or codec_id,
            native_random_access=native_random_access,
            lossy=lossy,
            needs_digits=needs_digits,
            required_params=tuple(required_params),
            description=description or (factory.__doc__ or "").strip().split("\n")[0],
            load_native=load_native,
        )
        return factory

    return deco


def unregister_codec(codec_id: str) -> None:
    """Remove a codec (mainly for tests registering throwaway codecs)."""
    _ensure_builtins()
    _REGISTRY.pop(codec_id, None)


def codec_spec(name: str) -> CodecSpec:
    """The :class:`CodecSpec` registered under ``name``."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown codec {name!r}; known: {known}") from None


def available_codecs() -> list[str]:
    """Sorted ids of every registered codec."""
    _ensure_builtins()
    return sorted(_REGISTRY)


class _RegisteredCodec:
    """A registry-built compressor wrapped with provenance stamping.

    Wrapping (instead of monkey-patching ``compress`` onto the factory's
    instance, as earlier versions did) keeps ``__slots__``-bearing and
    frozen compressor classes usable as codec factories.  Every attribute
    other than ``compress`` delegates to the wrapped compressor.
    """

    __slots__ = ("_inner", "_spec", "_params")

    def __init__(self, inner, spec: CodecSpec, params: dict) -> None:
        self._inner = inner
        self._spec = spec
        self._params = params

    @property
    def spec(self) -> CodecSpec:
        """The registry entry this compressor was built from."""
        return self._spec

    def compress(self, values):
        compressed = self._inner.compress(values)
        compressed.codec_id = self._spec.codec_id
        compressed.codec_params = dict(self._params)
        return compressed

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<registered codec {self._spec.codec_id!r}: {self._inner!r}>"


def get_codec(name: str, **params):
    """A fresh compressor for codec ``name``, configured with ``params``.

    The returned compressor's ``compress`` stamps every compressed object
    it produces with ``codec_id`` and ``codec_params`` — the provenance
    that :meth:`Compressed.to_bytes` and the archive container embed in
    their self-describing headers.  Params the spec declares as required
    (e.g. the ``eps`` bound of every lossy codec) must be passed
    explicitly.
    """
    spec = codec_spec(name)
    missing = [p for p in spec.required_params if p not in params]
    if missing:
        hint = ", ".join(f"{p}=..." for p in missing)
        raise TypeError(
            f"codec {name!r} requires explicit construction params: "
            f"get_codec({name!r}, {hint})"
        )
    try:
        compressor = spec.factory(**params)
    except TypeError as exc:
        raise TypeError(f"codec {name!r}: {exc}") from exc
    return _RegisteredCodec(compressor, spec, dict(params))


def load_compressed(data):
    """Decode a codec frame (``Compressed.to_bytes`` output) back to an object.

    Native payloads parse directly; generic ``values`` payloads re-run the
    recorded codec deterministically, reproducing the identical compressed
    object.

    ``data`` may be any byte buffer — ``bytes``, a ``memoryview``, an mmap
    slice.  The parse is zero-copy: native loaders adopt views into ``data``
    (the buffer must outlive the returned object), which is what the lazy
    archive path of :mod:`repro.codecs.container` builds on.
    """
    from ..baselines.base import Compressed

    frame = serialize.read_frame(data)
    spec = codec_spec(frame.codec_id)
    if frame.native:
        if spec.load_native is None:
            raise ValueError(
                f"codec {frame.codec_id!r} has no native payload loader; "
                "the frame is corrupt or from an incompatible version"
            )
        compressed = spec.load_native(frame.payload, frame.params)
        # Cross-check the frame header against what the native payload itself
        # records, when the loader exposes a count without decompressing.
        known = compressed._n
        if known is None and type(compressed).n is not Compressed.n:
            known = compressed.n  # overridden accessor: O(1) payload header read
        if known is not None and int(known) != frame.n:
            raise ValueError(
                f"corrupt codec frame: native payload holds {int(known)} "
                f"values, header says {frame.n}"
            )
    else:
        if spec.lossy:
            raise ValueError(
                f"codec {frame.codec_id!r} is lossy: a values-fallback frame "
                "cannot reproduce the approximation (decoded values are not "
                "the compressor's input); only native frames are valid"
            )
        values = serialize.decode_values(frame.payload, frame.n)
        compressed = get_codec(frame.codec_id, **frame.params).compress(values)
    # Propagate the header count so len()/compression_ratio() on a freshly
    # loaded object stay O(1) even when the loader left _n unset.
    compressed._n = frame.n
    compressed.codec_id = frame.codec_id
    compressed.codec_params = dict(frame.params)
    return compressed
