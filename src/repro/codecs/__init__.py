"""First-class codecs: registry, unified serialisation, archive container.

The public surface of the codec subsystem:

* :func:`get_codec` / :func:`available_codecs` / :func:`register_codec` —
  the codec registry (stable string ids + capability flags);
* :func:`compress` — the one-call facade: values in, ``Compressed`` out,
  tagged with the provenance that makes serialisation self-describing;
* :func:`save` / :func:`open_archive` — the on-disk container
  (re-exported at top level as ``repro.save`` / ``repro.open``).
  ``save`` writes atomically; ``open_archive(path, lazy=True)`` mmaps the
  archive and parses it zero-copy on first touch (crc on first decode)
  instead of reading the whole file eagerly.

>>> import numpy as np
>>> from repro.codecs import compress
>>> c = compress(np.arange(500, dtype=np.int64), codec="gorilla")
>>> from repro.baselines.base import Compressed
>>> bool(np.array_equal(Compressed.from_bytes(c.to_bytes()).decompress(),
...                     c.decompress()))
True
"""

from __future__ import annotations

import numpy as np

from .container import (
    APPEND_MAGIC,
    ARCHIVE_MAGIC,
    GROUP_MAGIC,
    LEGACY_MAGIC,
    AppendableArchive,
    Archive,
    GroupLog,
    append_open,
    open_archive,
    read_group_log,
    save,
)
from .registry import (
    CodecSpec,
    available_codecs,
    codec_spec,
    get_codec,
    load_compressed,
    register_codec,
    unregister_codec,
)

__all__ = [
    "compress",
    "get_codec",
    "available_codecs",
    "codec_spec",
    "register_codec",
    "unregister_codec",
    "load_compressed",
    "CodecSpec",
    "Archive",
    "AppendableArchive",
    "GroupLog",
    "read_group_log",
    "save",
    "open_archive",
    "append_open",
    "ARCHIVE_MAGIC",
    "APPEND_MAGIC",
    "GROUP_MAGIC",
    "LEGACY_MAGIC",
]


def compress(values, codec: str = "neats", **params):
    """Compress ``values`` with the codec registered under ``codec``.

    ``params`` are forwarded to the codec's factory (e.g. ``digits=2`` for
    ``alp``, ``block_size=500`` for the block-wise codecs, ``models=...`` for
    the NeaTS family).  The returned object implements the full
    :class:`~repro.baselines.base.Compressed` protocol — ``decompress()``,
    ``access()``, ``decompress_range()``, ``size_bits()``, ``to_bytes()`` —
    and records its codec id and params for self-describing persistence.
    """
    return get_codec(codec, **params).compress(np.asarray(values))
